//! A deliberately minimal HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Serial accept loop on one background thread: the observability plane is
//! a debugging aid scraped by one Prometheus instance or one person with
//! `curl`, so concurrency would buy nothing and cost a thread pool. Every
//! response carries `Content-Length` and `Connection: close`, which keeps
//! the protocol state machine trivial (one request per connection).
//!
//! Shutdown uses a poison pill: [`LiveServer::shutdown`] raises a flag and
//! then connects to the listener itself so the blocking `accept` wakes up,
//! observes the flag and returns. No platform-specific socket teardown.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::Counter;
use txsampler::collect::{SnapshotHub, SnapshotPolicy};
use txsampler::{report, store};
use txsim_pmu::FuncRegistry;

use crate::prometheus;

/// Content type for the Prometheus text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Handle to a running live-observability server. Dropping it (or calling
/// [`LiveServer::shutdown`]) stops the accept loop and joins the thread.
#[derive(Debug)]
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LiveServer {
    /// Bind `127.0.0.1:port` (`port` 0 picks an ephemeral port) and serve
    /// the hub's snapshots until shutdown. `funcs` is the registry the
    /// workload interns its functions into — it resolves [`txsim_pmu::FuncId`]s
    /// to names for `/flamegraph` and `/profile.json`.
    pub fn start(hub: Arc<SnapshotHub>, funcs: FuncRegistry, port: u16) -> io::Result<LiveServer> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let started = Instant::now();
        let thread = std::thread::Builder::new()
            .name("txsampler-live".into())
            .spawn(move || accept_loop(listener, hub, funcs, stop_flag, started))?;
        Ok(LiveServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop and join the server thread.
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Poison pill: unblock `accept` by connecting to ourselves. If the
        // connect fails the listener is already gone, which is fine.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    hub: Arc<SnapshotHub>,
    funcs: FuncRegistry,
    stop: Arc<AtomicBool>,
    started: Instant,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                // A wedged client must not park the server forever.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let _ = handle_connection(stream, &hub, &funcs, started);
            }
            Err(_) => continue,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    hub: &SnapshotHub,
    funcs: &FuncRegistry,
    started: Instant,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers so well-behaved clients see us consume the request.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 && header.trim() != "" {
        header.clear();
    }
    let mut stream = reader.into_inner();

    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    // Split off the query string; only /diff interprets it, the rest
    // ignore it (`/metrics?x=1` scrapes /metrics).
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };

    match path {
        "/healthz" => {
            obs::count(Counter::HttpHealthzRequests);
            // JSON so the fleet aggregator (and a human gauging follower
            // lag) can read the current epoch and snapshot cadence.
            let (policy, interval) = match hub.policy() {
                SnapshotPolicy::EverySamples(n) => ("every_samples", n),
                SnapshotPolicy::EveryCycles(n) => ("every_cycles", n),
            };
            let body = format!(
                concat!(
                    "{{\"status\":\"ok\",\"epoch\":{},\"uptime_ms\":{},",
                    "\"snapshot_policy\":\"{}\",\"snapshot_interval\":{}}}\n"
                ),
                hub.epoch(),
                started.elapsed().as_millis(),
                policy,
                interval,
            );
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        "/metrics" => {
            obs::count(Counter::HttpMetricsRequests);
            let view = hub.latest();
            let window = hub.window();
            let body = prometheus::render(&view, window.as_ref(), &obs::registry().snapshot());
            respond(&mut stream, "200 OK", PROMETHEUS_CONTENT_TYPE, &body)
        }
        "/profile.json" => {
            obs::count(Counter::HttpProfileRequests);
            let view = hub.latest();
            let breakdown = view.profile.time_breakdown();
            let store_text = store::save_with_funcs(&view.profile, funcs);
            let body = format!(
                concat!(
                    "{{\"epoch\":{},\"samples\":{},\"threads\":{},",
                    "\"breakdown\":{{\"outside\":{},\"tx\":{},\"fallback\":{},",
                    "\"lock_waiting\":{},\"overhead\":{}}},\"store\":\"{}\"}}\n"
                ),
                view.epoch,
                view.profile.samples,
                view.profile.threads.len(),
                breakdown.outside,
                breakdown.tx,
                breakdown.fallback,
                breakdown.lock_waiting,
                breakdown.overhead,
                json_escape(&store_text),
            );
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        "/flamegraph" => {
            obs::count(Counter::HttpFlamegraphRequests);
            let view = hub.latest();
            let body = report::render_folded_registry(&view.profile, funcs);
            respond(&mut stream, "200 OK", "text/plain; charset=utf-8", &body)
        }
        "/diff" => match epoch_diff_body(hub, query) {
            Ok(body) => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", &body),
            Err((status, body)) => respond(&mut stream, status, "text/plain; charset=utf-8", &body),
        },
        "/delta" => {
            obs::count(Counter::HttpDeltaRequests);
            match delta_body(hub, funcs, query) {
                Ok(body) => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", &body),
                Err((status, body)) => {
                    respond(&mut stream, status, "text/plain; charset=utf-8", &body)
                }
            }
        }
        "/trend" => {
            obs::count(Counter::HttpTrendRequests);
            let trend = hub.trend();
            let mut body = format!(
                "# epoch\tsamples\tw\tt_tx\tt_fb\tt_wait\tt_oh\tabort_samples\tp99_tx_cycles\ttruncated_rows={}\n",
                trend.truncated
            );
            for row in &trend.rows {
                let t = &row.totals;
                body.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    row.epoch,
                    row.samples,
                    t.w,
                    t.t_tx,
                    t.t_fb,
                    t.t_wait,
                    t.t_oh,
                    t.abort_samples,
                    row.p99_tx_cycles,
                ));
            }
            respond(&mut stream, "200 OK", "text/plain; charset=utf-8", &body)
        }
        _ => {
            obs::count(Counter::HttpOtherRequests);
            respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /healthz, /metrics, /profile.json, /flamegraph, /trend, /delta?since=N, /diff?from=N&to=M\n",
            )
        }
    }
}

/// Build the `/diff?from=N&to=M` body from the hub's retained epoch
/// history. Only totals are retained per epoch (no CCTs), so this is a
/// totals-level diff rendered by the same [`txsampler::diff`] code path as
/// `repro diff`. Omitted bounds default to the oldest/newest retained
/// epoch. Returns `(status, body)` on client errors.
fn epoch_diff_body(hub: &SnapshotHub, query: &str) -> Result<String, (&'static str, String)> {
    let bad = |msg: String| ("400 Bad Request", msg);
    let mut from = None;
    let mut to = None;
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| bad(format!("malformed query parameter {pair:?}\n")))?;
        let epoch: u64 = value
            .parse()
            .map_err(|_| bad(format!("{key} must be an epoch number, got {value:?}\n")))?;
        match key {
            "from" => from = Some(epoch),
            "to" => to = Some(epoch),
            _ => return Err(bad(format!("unknown query parameter {key:?}\n"))),
        }
    }
    let history = hub.history();
    let (oldest, newest) = match (history.first(), history.last()) {
        (Some(first), Some(last)) => (first.epoch, last.epoch),
        _ => {
            return Err((
                "404 Not Found",
                "no epochs retained yet; publish a snapshot first\n".into(),
            ))
        }
    };
    let from = from.unwrap_or(oldest);
    let to = to.unwrap_or(newest);
    let lookup = |epoch: u64| history.iter().find(|s| s.epoch == epoch);
    let (a, b) = match (lookup(from), lookup(to)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err((
                "404 Not Found",
                format!("epoch not retained; retained range is {oldest}..={newest}\n"),
            ))
        }
    };
    let mut body = format!(
        "== live diff: epoch {} (A, {} samples) -> epoch {} (B, {} samples)\n",
        a.epoch, a.samples, b.epoch, b.samples
    );
    body.push_str(&txsampler::diff::render_totals_diff(
        "A", "B", &a.totals, &b.totals,
    ));
    Ok(body)
}

/// Build the `/delta?since=N` body: everything the hub saw after epoch N,
/// serialized as a `txsampler-delta` chunk (the streamable extension of
/// the store format). `since` omitted or 0 asks for everything; the hub
/// decides whether that is served incrementally or as a full resync.
fn delta_body(
    hub: &SnapshotHub,
    funcs: &FuncRegistry,
    query: &str,
) -> Result<String, (&'static str, String)> {
    let bad = |msg: String| ("400 Bad Request", msg);
    let mut since = 0u64;
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| bad(format!("malformed query parameter {pair:?}\n")))?;
        match key {
            "since" => {
                since = value
                    .parse()
                    .map_err(|_| bad(format!("since must be an epoch number, got {value:?}\n")))?;
            }
            _ => return Err(bad(format!("unknown query parameter {key:?}\n"))),
        }
    }
    let view = hub.delta_since(since);
    let full = matches!(view.kind, txsampler::collect::DeltaKind::Full);
    Ok(store::save_delta_with_funcs(
        &view.profile,
        view.since,
        view.to,
        full,
        funcs,
    ))
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Issue one blocking GET against `addr` and return `(status_line, body)`.
/// Shared by the integration tests and the serve-mode smoke test — a
/// std-only stand-in for an HTTP client.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsampler::cct::{NodeKey, ROOT};
    use txsampler::collect::SnapshotPolicy;
    use txsampler::{Periods, ThreadProfile, TimeComponent};
    use txsim_pmu::Ip;

    fn hub_with_one_delta(funcs: &FuncRegistry) -> Arc<SnapshotHub> {
        let hub = SnapshotHub::new(SnapshotPolicy::EverySamples(1));
        let f = funcs.intern("busy_loop", "w.rs", 1);
        let mut delta = ThreadProfile {
            tid: 0,
            periods: Periods::default(),
            ..ThreadProfile::default()
        };
        let frame = delta.cct.child(
            ROOT,
            NodeKey::Frame {
                func: f,
                callsite: Ip::UNKNOWN,
                speculative: false,
            },
        );
        let leaf = delta.cct.child(
            frame,
            NodeKey::Stmt {
                ip: Ip::new(f, 3),
                speculative: false,
            },
        );
        delta
            .cct
            .metrics_mut(leaf)
            .add_cycles_sample(TimeComponent::Tx);
        delta.samples = 1;
        hub.publish(&delta);
        hub
    }

    #[test]
    fn serves_all_endpoints_and_shuts_down_cleanly() {
        let funcs = FuncRegistry::new();
        let hub = hub_with_one_delta(&funcs);
        let mut server =
            LiveServer::start(Arc::clone(&hub), funcs.clone(), 0).expect("bind ephemeral port");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert!(status.contains("200"), "healthz status: {status}");
        assert!(body.starts_with("{\"status\":\"ok\",\"epoch\":1,"));
        assert!(body.contains("\"uptime_ms\":"));
        assert!(body.contains("\"snapshot_policy\":\"every_samples\",\"snapshot_interval\":1"));

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert!(status.contains("200"));
        assert!(body.contains("txsampler_snapshot_epoch 1"));
        assert!(body.contains("txsampler_cycle_share{component=\"tx\"} 1"));

        let (status, body) = http_get(addr, "/profile.json").unwrap();
        assert!(status.contains("200"));
        assert!(body.starts_with("{\"epoch\":1,"));
        assert!(
            body.contains("\\tbusy_loop"),
            "store text carries func names"
        );

        let (status, body) = http_get(addr, "/flamegraph").unwrap();
        assert!(status.contains("200"));
        assert_eq!(body, "busy_loop;busy_loop:3 1\n");

        let (status, body) = http_get(addr, "/trend").unwrap();
        assert!(status.contains("200"));
        assert!(body.starts_with("# epoch\tsamples"));
        assert!(body.contains("truncated_rows=0"));
        assert!(body.lines().next().unwrap().contains("\tp99_tx_cycles\t"));
        assert!(body.lines().nth(1).unwrap().starts_with("1\t1\t"));
        // Histogram-free publishes report a zero p99 in the last column.
        assert!(body.lines().nth(1).unwrap().ends_with("\t0"));

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert!(status.contains("404"));

        server.shutdown();
        // The port is released: connections are refused (or reset at read).
        assert!(http_get(addr, "/healthz").is_err());
    }

    #[test]
    fn delta_endpoint_serves_incremental_chunks() {
        let funcs = FuncRegistry::new();
        let hub = hub_with_one_delta(&funcs);
        let mut server =
            LiveServer::start(Arc::clone(&hub), funcs.clone(), 0).expect("bind ephemeral port");
        let addr = server.addr();

        // since=0: full sync by content, parseable as a delta chunk that
        // reproduces the cumulative profile — names included.
        let (status, body) = http_get(addr, "/delta?since=0").unwrap();
        assert!(status.contains("200"), "delta status: {status}");
        let chunk = store::load_delta(&body).expect("chunk parses");
        assert_eq!((chunk.since, chunk.to), (0, 1));
        assert!(!chunk.full, "all epochs retained: served incrementally");
        assert_eq!(chunk.profile.samples, 1);
        assert!(chunk.funcs.values().any(|n| n == "busy_loop"));

        // A second epoch: polling from epoch 1 returns only the new
        // activity, and any func names first referenced mid-stream.
        let f2 = funcs.intern("late_func", "w.rs", 9);
        let mut delta = ThreadProfile {
            tid: 1,
            periods: Periods::default(),
            ..ThreadProfile::default()
        };
        let leaf = delta.cct.child(
            ROOT,
            NodeKey::Stmt {
                ip: Ip::new(f2, 2),
                speculative: false,
            },
        );
        delta
            .cct
            .metrics_mut(leaf)
            .add_cycles_sample(TimeComponent::Tx);
        delta.samples = 1;
        hub.publish(&delta);

        let (status, body) = http_get(addr, "/delta?since=1").unwrap();
        assert!(status.contains("200"));
        let chunk = store::load_delta(&body).expect("incremental chunk parses");
        assert_eq!((chunk.since, chunk.to), (1, 2));
        assert!(!chunk.full);
        assert_eq!(chunk.profile.samples, 1, "only epoch 2's activity");
        assert!(
            chunk.funcs.values().any(|n| n == "late_func"),
            "names arriving mid-stream ride along with the delta"
        );

        // since ahead of the hub (restarted instance): full resync chunk.
        let (status, body) = http_get(addr, "/delta?since=99").unwrap();
        assert!(status.contains("200"));
        let chunk = store::load_delta(&body).expect("resync chunk parses");
        assert!(chunk.full, "epoch regression forces a full resync");
        assert_eq!(chunk.profile.samples, 2);

        // The whole point: an incremental delta is smaller than the full
        // profile download.
        let (_, full_body) = http_get(addr, "/profile.json").unwrap();
        let (_, delta_body) = http_get(addr, "/delta?since=2").unwrap();
        assert!(
            delta_body.len() < full_body.len(),
            "no-news delta ({}) must beat full re-download ({})",
            delta_body.len(),
            full_body.len()
        );

        let (status, body) = http_get(addr, "/delta?since=bogus").unwrap();
        assert!(status.contains("400"), "bad since: {status}");
        assert!(body.contains("epoch number"));

        server.shutdown();
    }

    #[test]
    fn diff_endpoint_compares_retained_epochs() {
        let funcs = FuncRegistry::new();
        let hub = hub_with_one_delta(&funcs);
        // Second epoch: one lock-waiting sample shifts the time mix.
        let mut delta = ThreadProfile {
            tid: 1,
            periods: Periods::default(),
            ..ThreadProfile::default()
        };
        let leaf = delta.cct.child(
            ROOT,
            NodeKey::Stmt {
                ip: Ip::UNKNOWN,
                speculative: false,
            },
        );
        delta
            .cct
            .metrics_mut(leaf)
            .add_cycles_sample(TimeComponent::LockWaiting);
        delta.samples = 1;
        hub.publish(&delta);

        let mut server =
            LiveServer::start(Arc::clone(&hub), funcs.clone(), 0).expect("bind ephemeral port");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/diff?from=1&to=2").unwrap();
        assert!(status.contains("200"), "diff status: {status}");
        assert!(body.starts_with("== live diff: epoch 1 (A, 1 samples) -> epoch 2 (B, 2 samples)"));
        assert!(body.contains("lock-wait"), "share deltas name components");

        // Omitted bounds default to the full retained range.
        let (status, default_body) = http_get(addr, "/diff").unwrap();
        assert!(status.contains("200"));
        assert_eq!(body, default_body);

        let (status, body) = http_get(addr, "/diff?from=99&to=2").unwrap();
        assert!(status.contains("404"), "unretained epoch: {status}");
        assert!(body.contains("retained range is 1..=2"));

        let (status, body) = http_get(addr, "/diff?from=bogus").unwrap();
        assert!(status.contains("400"), "bad epoch: {status}");
        assert!(body.contains("epoch number"));

        server.shutdown();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\tb\nc\"d\\e"), "a\\tb\\nc\\\"d\\\\e");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
