//! Fleet-scale profile aggregation: one pane of glass over N instances.
//!
//! Each profiled serving process runs its own [`crate::LiveServer`]; the
//! aggregator follows them all. A follower per instance polls
//! `/delta?since=N` (the epoch-delta export — only activity after the last
//! absorbed epoch travels), absorbs the chunks into a per-instance
//! [`Profile`], and the pane merges those into one fleet CCT on demand.
//!
//! Two realities of a fleet shape the design:
//!
//! * **Instances restart.** A restarted process starts back at epoch 0, so
//!   a follower that knew epoch N suddenly sees a hub behind it. The hub
//!   answers such polls with a `kind=full` chunk and the follower replaces
//!   (not accumulates) its copy — counted in [`InstanceStatus::resyncs`].
//! * **Func-id spaces diverge.** Every process interns functions in
//!   first-touch order, so id 7 here is not id 7 there. The fleet merge
//!   rewrites every instance profile into a fleet id space keyed by
//!   *function name* ([`Profile::remap_funcs`]), then merges CCTs with the
//!   same root-to-node path alignment `repro diff` uses ([`Cct::merge`]
//!   matches by path key). Ids that never got a name record fall back to a
//!   synthetic `inst{i}:func{id}` name: never mis-merged across instances,
//!   still distinguishable in the flamegraph.
//!
//! Everything is std-only (`TcpStream` polling, the same minimal HTTP
//! server as [`crate::LiveServer`]).

use std::io::{self, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::Counter;
use txsampler::store::{self, DeltaChunk, FuncNames};
use txsampler::{report, Profile};
use txsim_pmu::FuncId;

use crate::prometheus::{family, gauge_f64, shares};
use crate::server::http_get;

/// Thread-id stride separating instances in the fleet-merged profile's
/// per-thread summaries: instance `i`'s thread `t` appears as
/// `i * TID_STRIDE + t`.
const TID_STRIDE: usize = 1 << 20;

/// Ceiling for the per-instance poll backoff: after repeated failures a
/// dead instance is retried every `MAX_BACKOFF_POLLS` poll rounds at most,
/// so a fleet of corpses costs almost nothing yet recovery is never more
/// than one bounded window away.
const MAX_BACKOFF_POLLS: u32 = 32;

/// One followed instance: its identity, its absorbed state, and the
/// follower's health bookkeeping.
#[derive(Debug)]
struct Instance {
    /// The `host:port` string as given on the command line (label value).
    target: String,
    /// Resolved address polls connect to.
    addr: SocketAddr,
    /// Absorbed profile, still in the instance's own func-id space.
    profile: Profile,
    /// Func-name records received so far (instance id → name).
    funcs: FuncNames,
    /// Last epoch absorbed; the next poll asks for `since=epoch`.
    epoch: u64,
    /// Polls attempted.
    polls: u64,
    /// Polls that failed (connect/parse error); the previous state is kept.
    errors: u64,
    /// Full resyncs after the initial sync (instance restart or lag).
    resyncs: u64,
    /// Delta-chunk bytes transferred so far.
    delta_bytes: u64,
    /// Whether the most recent poll succeeded.
    healthy: bool,
    /// The most recent poll error, if any.
    last_error: Option<String>,
    /// Consecutive failed polls (drives the backoff window; reset on
    /// success).
    consecutive_errors: u32,
    /// Poll rounds left to skip before retrying this instance.
    skip_polls: u32,
    /// Poll rounds skipped due to backoff, in total.
    backoffs: u64,
}

impl Instance {
    fn new(target: String, addr: SocketAddr) -> Instance {
        Instance {
            target,
            addr,
            profile: Profile::default(),
            funcs: FuncNames::new(),
            epoch: 0,
            polls: 0,
            errors: 0,
            resyncs: 0,
            delta_bytes: 0,
            healthy: false,
            last_error: None,
            consecutive_errors: 0,
            skip_polls: 0,
            backoffs: 0,
        }
    }

    /// Fold one delta chunk into this instance's absorbed state. A `full`
    /// chunk replaces the copy (the hub could not serve incrementally:
    /// instance restart, or the follower lagged past the retained window).
    fn absorb(&mut self, chunk: &DeltaChunk) {
        if chunk.full {
            if self.polls > 1 || self.epoch > 0 {
                self.resyncs += 1;
                obs::count(Counter::AggResyncs);
            }
            self.profile = chunk.profile.clone();
            self.funcs = chunk.funcs.clone();
        } else {
            self.profile.absorb_profile(&chunk.profile, 0);
            self.funcs
                .extend(chunk.funcs.iter().map(|(id, name)| (*id, name.clone())));
        }
        self.epoch = chunk.to;
    }
}

/// A point-in-time health row for one followed instance, as served on
/// `/instances`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceStatus {
    /// Index of the instance in the `--follow` list.
    pub index: usize,
    /// The `host:port` the follower polls.
    pub target: String,
    /// Whether the most recent poll succeeded.
    pub healthy: bool,
    /// Last epoch absorbed from this instance.
    pub epoch: u64,
    /// Samples absorbed so far.
    pub samples: u64,
    /// Polls attempted.
    pub polls: u64,
    /// Polls that failed.
    pub errors: u64,
    /// Full resyncs after the initial sync.
    pub resyncs: u64,
    /// Delta-chunk bytes transferred.
    pub delta_bytes: u64,
    /// Poll rounds skipped so far because the instance was backing off.
    pub backoffs: u64,
    /// Poll rounds left before the follower retries this instance
    /// (0 = polling normally).
    pub backoff_remaining: u64,
    /// Most recent poll error, if the instance is unhealthy.
    pub last_error: Option<String>,
}

/// The fleet aggregator: follower state for N instances plus the merge.
///
/// [`Aggregator::poll_all`] advances every follower by one poll;
/// [`Aggregator::fleet`] produces the merged profile on demand. The two
/// are decoupled so the HTTP pane always answers from absorbed state and
/// never blocks on a slow instance.
pub struct Aggregator {
    instances: Mutex<Vec<Instance>>,
}

impl Aggregator {
    /// Lock the instance table, recovering from poisoning. A panic on a
    /// poll or render thread must not permanently brick the fleet pane:
    /// the absorbed state is additive and every per-instance update is
    /// field-local, so the worst a recovered guard can observe is one
    /// instance's half-advanced bookkeeping — strictly better than
    /// serving errors forever. Each recovery is counted.
    fn lock_instances(&self) -> std::sync::MutexGuard<'_, Vec<Instance>> {
        self.instances.lock().unwrap_or_else(|poisoned| {
            obs::count(Counter::AggLockRecoveries);
            poisoned.into_inner()
        })
    }

    /// Create an aggregator following `targets` (each `host:port`).
    /// Resolution failures are reported immediately — a typo in the fleet
    /// list should not surface as an eternally-unhealthy follower.
    pub fn new(targets: &[String]) -> io::Result<Aggregator> {
        let mut instances = Vec::with_capacity(targets.len());
        for target in targets {
            let addr = target.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{target}: no address"))
            })?;
            instances.push(Instance::new(target.clone(), addr));
        }
        if instances.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no instances to follow",
            ));
        }
        Ok(Aggregator {
            instances: Mutex::new(instances),
        })
    }

    /// Poll every followed instance once, absorbing whatever each returns.
    /// A failed poll marks the instance unhealthy, keeps its previous
    /// state, and opens an exponentially growing (but bounded) backoff
    /// window of skipped rounds, so a dead instance does not tax the loop;
    /// the next attempted poll retries from the same epoch.
    pub fn poll_all(&self) {
        let mut instances = self.lock_instances();
        for inst in instances.iter_mut() {
            if inst.skip_polls > 0 {
                inst.skip_polls -= 1;
                inst.backoffs += 1;
                obs::count(Counter::AggBackoffs);
                continue;
            }
            inst.polls += 1;
            obs::count(Counter::AggPolls);
            match poll_delta(inst.addr, inst.epoch) {
                Ok((bytes, chunk)) => {
                    inst.delta_bytes += bytes as u64;
                    inst.absorb(&chunk);
                    inst.healthy = true;
                    inst.last_error = None;
                    inst.consecutive_errors = 0;
                }
                Err(e) => {
                    inst.errors += 1;
                    inst.healthy = false;
                    inst.last_error = Some(e.to_string());
                    inst.consecutive_errors += 1;
                    // 1, 3, 7, 15, 31, 31, ... skipped rounds.
                    inst.skip_polls =
                        (1u32 << inst.consecutive_errors.min(5)).min(MAX_BACKOFF_POLLS) - 1;
                }
            }
        }
    }

    /// Health rows for every followed instance, in `--follow` order.
    pub fn statuses(&self) -> Vec<InstanceStatus> {
        let instances = self.lock_instances();
        instances
            .iter()
            .enumerate()
            .map(|(index, inst)| InstanceStatus {
                index,
                target: inst.target.clone(),
                healthy: inst.healthy,
                epoch: inst.epoch,
                samples: inst.profile.samples,
                polls: inst.polls,
                errors: inst.errors,
                resyncs: inst.resyncs,
                delta_bytes: inst.delta_bytes,
                backoffs: inst.backoffs,
                backoff_remaining: inst.skip_polls as u64,
                last_error: inst.last_error.clone(),
            })
            .collect()
    }

    /// One instance's absorbed profile and names (for `/flamegraph?instance=i`).
    pub fn instance_profile(&self, index: usize) -> Option<(Profile, FuncNames)> {
        let instances = self.lock_instances();
        instances
            .get(index)
            .map(|inst| (inst.profile.clone(), inst.funcs.clone()))
    }

    /// The fleet-merged profile: every instance rewritten into a shared
    /// name-keyed func-id space, then CCT-merged by path (the same
    /// alignment `repro diff` uses). Thread summaries are offset by
    /// [`TID_STRIDE`] per instance so per-thread rows stay attributable.
    pub fn fleet(&self) -> (Profile, FuncNames) {
        let instances = self.lock_instances();
        let mut fleet_names = FuncNames::new();
        let mut by_name: std::collections::HashMap<String, FuncId> =
            std::collections::HashMap::new();
        let mut next_id = 1u32;
        let mut fleet = Profile::default();
        for (i, inst) in instances.iter().enumerate() {
            let mut map = |id: FuncId| -> FuncId {
                if id == FuncId::UNKNOWN {
                    return FuncId::UNKNOWN;
                }
                // Name-keyed: same name anywhere in the fleet → same fleet
                // id. Unnamed ids get a synthetic per-instance name so two
                // instances' unnamed id 7 never falsely merge.
                let name = inst
                    .funcs
                    .get(&id.0)
                    .cloned()
                    .unwrap_or_else(|| format!("inst{i}:func{}", id.0));
                *by_name.entry(name.clone()).or_insert_with(|| {
                    let fid = FuncId(next_id);
                    next_id += 1;
                    fleet_names.insert(fid.0, name);
                    fid
                })
            };
            let remapped = inst.profile.remap_funcs(&mut map);
            fleet.absorb_profile(&remapped, i * TID_STRIDE);
        }
        (fleet, fleet_names)
    }
}

/// Issue one `/delta?since=N` poll and parse the chunk. Returns the body
/// size too, so the follower can account transfer volume.
fn poll_delta(addr: SocketAddr, since: u64) -> io::Result<(usize, DeltaChunk)> {
    let (status, body) = http_get(addr, &format!("/delta?since={since}"))?;
    if !status.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("/delta returned {status}"),
        ));
    }
    let chunk = store::load_delta(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((body.len(), chunk))
}

/// Render the fleet Prometheus exposition: fleet totals plus one labeled
/// series per instance, so a dashboard can show both the aggregate and the
/// outlier.
pub fn render_fleet_metrics(agg: &Aggregator) -> String {
    let (fleet, _) = agg.fleet();
    let statuses = agg.statuses();
    let totals = fleet.totals();
    let mut out = String::new();

    family(
        &mut out,
        "txsampler_fleet_instances",
        "gauge",
        "Instances the aggregator follows (healthy = most recent poll succeeded).",
    );
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("txsampler_fleet_instances {}\n", statuses.len()),
    );
    family(
        &mut out,
        "txsampler_fleet_instances_healthy",
        "gauge",
        "Followed instances whose most recent poll succeeded.",
    );
    let healthy = statuses.iter().filter(|s| s.healthy).count();
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("txsampler_fleet_instances_healthy {healthy}\n"),
    );

    family(
        &mut out,
        "txsampler_fleet_samples_total",
        "counter",
        "PMU samples absorbed across the whole fleet.",
    );
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("txsampler_fleet_samples_total {}\n", fleet.samples),
    );

    family(
        &mut out,
        "txsampler_fleet_cycles_total",
        "counter",
        "Sampled work cycles (W) across the whole fleet.",
    );
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("txsampler_fleet_cycles_total {}\n", totals.w),
    );

    family(
        &mut out,
        "txsampler_fleet_commits_total",
        "counter",
        "Sampled RTM commit events across the whole fleet.",
    );
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("txsampler_fleet_commits_total {}\n", totals.commit_samples),
    );

    family(
        &mut out,
        "txsampler_fleet_aborts_total",
        "counter",
        "Sampled application-caused RTM abort events across the whole fleet.",
    );
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("txsampler_fleet_aborts_total {}\n", totals.abort_samples),
    );

    family(
        &mut out,
        "txsampler_fleet_cycle_share",
        "gauge",
        "Share of sampled cycles per time component, fleet-wide.",
    );
    shares(
        &mut out,
        "txsampler_fleet_cycle_share",
        &fleet.time_breakdown(),
    );

    family(
        &mut out,
        "txsampler_instance_up",
        "gauge",
        "Whether the most recent poll of this instance succeeded.",
    );
    for s in &statuses {
        gauge_f64(
            &mut out,
            &format!(
                "txsampler_instance_up{{instance=\"{}\",target=\"{}\"}}",
                s.index, s.target
            ),
            if s.healthy { 1.0 } else { 0.0 },
        );
    }
    for (name, help, get) in [
        (
            "txsampler_instance_samples_total",
            "PMU samples absorbed from this instance.",
            &(|s: &InstanceStatus| s.samples) as &dyn Fn(&InstanceStatus) -> u64,
        ),
        (
            "txsampler_instance_epoch",
            "Last snapshot epoch absorbed from this instance.",
            &|s: &InstanceStatus| s.epoch,
        ),
        (
            "txsampler_instance_polls_total",
            "Delta polls attempted against this instance.",
            &|s: &InstanceStatus| s.polls,
        ),
        (
            "txsampler_instance_poll_errors_total",
            "Delta polls that failed against this instance.",
            &|s: &InstanceStatus| s.errors,
        ),
        (
            "txsampler_instance_resyncs_total",
            "Full resyncs performed for this instance (restart or lag).",
            &|s: &InstanceStatus| s.resyncs,
        ),
        (
            "txsampler_instance_delta_bytes_total",
            "Delta-chunk bytes transferred from this instance.",
            &|s: &InstanceStatus| s.delta_bytes,
        ),
        (
            "txsampler_instance_backoffs_total",
            "Poll rounds skipped for this instance while backing off after failures.",
            &|s: &InstanceStatus| s.backoffs,
        ),
    ] {
        family(&mut out, name, "counter", help);
        for s in &statuses {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{name}{{instance=\"{}\",target=\"{}\"}} {}\n",
                    s.index,
                    s.target,
                    get(s)
                ),
            );
        }
    }
    out
}

/// Render the `/instances` JSON health document.
pub fn render_instances_json(agg: &Aggregator) -> String {
    let statuses = agg.statuses();
    let mut out = String::from("[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                concat!(
                    "{{\"instance\":{},\"target\":\"{}\",\"healthy\":{},",
                    "\"epoch\":{},\"samples\":{},\"polls\":{},\"errors\":{},",
                    "\"resyncs\":{},\"delta_bytes\":{},\"backoffs\":{},",
                    "\"backoff_remaining\":{},\"last_error\":{}}}"
                ),
                s.index,
                s.target,
                s.healthy,
                s.epoch,
                s.samples,
                s.polls,
                s.errors,
                s.resyncs,
                s.delta_bytes,
                s.backoffs,
                s.backoff_remaining,
                match &s.last_error {
                    Some(e) => format!("\"{}\"", crate::server::json_escape(e)),
                    None => "null".to_string(),
                },
            ),
        );
    }
    out.push_str("]\n");
    out
}

/// Handle to a running fleet-aggregation server: a poll loop following the
/// instances plus an HTTP pane serving the merged view. Dropping it (or
/// calling [`AggServer::shutdown`]) stops both threads.
#[derive(Debug)]
pub struct AggServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl AggServer {
    /// Bind `127.0.0.1:port` (0 picks an ephemeral port), start polling
    /// `targets` every `poll_interval`, and serve the fleet pane.
    pub fn start(targets: &[String], port: u16, poll_interval: Duration) -> io::Result<AggServer> {
        let agg = Arc::new(Aggregator::new(targets)?);
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        let poll_agg = Arc::clone(&agg);
        let poll_stop = Arc::clone(&stop);
        let poller = std::thread::Builder::new()
            .name("txsampler-agg-poll".into())
            .spawn(move || {
                while !poll_stop.load(Ordering::SeqCst) {
                    poll_agg.poll_all();
                    // Sleep in small slices so shutdown stays prompt even
                    // with long poll intervals.
                    let deadline = Instant::now() + poll_interval;
                    while Instant::now() < deadline {
                        if poll_stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(10).min(poll_interval));
                    }
                }
            })?;

        let serve_stop = Arc::clone(&stop);
        let server = std::thread::Builder::new()
            .name("txsampler-agg-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if serve_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                            let _ = handle_connection(stream, &agg, started);
                        }
                        Err(_) => continue,
                    }
                }
            })?;

        Ok(AggServer {
            addr,
            stop,
            threads: vec![poller, server],
        })
    }

    /// The bound address of the fleet pane (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop polling and serving; joins both threads.
    pub fn shutdown(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for AggServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, agg: &Aggregator, started: Instant) -> io::Result<()> {
    use std::io::{BufRead, BufReader};
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 && header.trim() != "" {
        header.clear();
    }
    let mut stream = reader.into_inner();

    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };

    match path {
        "/healthz" => {
            let statuses = agg.statuses();
            let healthy = statuses.iter().filter(|s| s.healthy).count();
            let body = format!(
                "{{\"status\":\"ok\",\"instances\":{},\"healthy\":{},\"uptime_ms\":{}}}\n",
                statuses.len(),
                healthy,
                started.elapsed().as_millis(),
            );
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        "/metrics" => {
            let body = render_fleet_metrics(agg);
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/instances" => {
            let body = render_instances_json(agg);
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        "/flamegraph" => {
            // `?instance=i` drills into one instance's own profile (its
            // own func-id space); bare `/flamegraph` is the fleet merge.
            let mut instance: Option<usize> = None;
            for pair in query.split('&').filter(|s| !s.is_empty()) {
                if let Some(("instance", value)) = pair.split_once('=') {
                    match value.parse() {
                        Ok(i) => instance = Some(i),
                        Err(_) => {
                            return respond(
                                &mut stream,
                                "400 Bad Request",
                                "text/plain; charset=utf-8",
                                &format!("instance must be an index, got {value:?}\n"),
                            )
                        }
                    }
                }
            }
            let body = match instance {
                Some(i) => match agg.instance_profile(i) {
                    Some((profile, funcs)) => report::render_folded_names(&profile, &funcs),
                    None => {
                        return respond(
                            &mut stream,
                            "404 Not Found",
                            "text/plain; charset=utf-8",
                            &format!("no instance {i}; see /instances\n"),
                        )
                    }
                },
                None => {
                    let (fleet, names) = agg.fleet();
                    report::render_folded_names(&fleet, &names)
                }
            };
            respond(&mut stream, "200 OK", "text/plain; charset=utf-8", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /healthz, /metrics, /instances, /flamegraph[?instance=i]\n",
        ),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsampler::cct::{NodeKey, ROOT};
    use txsampler::profile::ThreadSummary;
    use txsampler::{Metrics, TimeComponent};
    use txsim_pmu::Ip;

    /// A one-function profile fragment: `name` at line 1, `w` cycles.
    fn fragment(func: u32, w: u64) -> Profile {
        let mut p = Profile::default();
        let n = p.cct.child(
            ROOT,
            NodeKey::Stmt {
                ip: Ip::new(FuncId(func), 1),
                speculative: false,
            },
        );
        for _ in 0..w {
            p.cct.metrics_mut(n).add_cycles_sample(TimeComponent::Tx);
        }
        p.samples = w;
        p.threads.push(ThreadSummary {
            tid: 0,
            totals: Metrics {
                w,
                ..Metrics::default()
            },
            sites: Default::default(),
        });
        p
    }

    fn chunk(
        since: u64,
        to: u64,
        full: bool,
        profile: Profile,
        funcs: &[(u32, &str)],
    ) -> DeltaChunk {
        DeltaChunk {
            since,
            to,
            full,
            profile,
            funcs: funcs
                .iter()
                .map(|(id, name)| (*id, name.to_string()))
                .collect(),
        }
    }

    fn test_agg(n: usize) -> Aggregator {
        let targets: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 4000 + i)).collect();
        Aggregator::new(&targets).expect("loopback targets resolve")
    }

    #[test]
    fn follower_absorbs_increments_and_resyncs_on_full() {
        let mut inst = Instance::new("a:1".into(), "127.0.0.1:1".parse().unwrap());
        // Initial sync: incremental from 0.
        inst.polls = 1;
        inst.absorb(&chunk(0, 2, false, fragment(1, 5), &[(1, "f")]));
        assert_eq!(inst.epoch, 2);
        assert_eq!(inst.profile.samples, 5);
        assert_eq!(inst.resyncs, 0);

        // Steady state: only the delta arrives, state accumulates.
        inst.polls = 2;
        inst.absorb(&chunk(2, 3, false, fragment(2, 3), &[(2, "g")]));
        assert_eq!(inst.epoch, 3);
        assert_eq!(inst.profile.samples, 8);
        assert_eq!(inst.funcs.len(), 2);
        assert_eq!(inst.resyncs, 0);

        // Instance restarted: a full chunk replaces, does not accumulate.
        inst.polls = 3;
        inst.absorb(&chunk(0, 1, true, fragment(1, 2), &[(1, "f")]));
        assert_eq!(inst.epoch, 1);
        assert_eq!(inst.profile.samples, 2, "full chunk replaces the copy");
        assert_eq!(
            inst.funcs.len(),
            1,
            "names from the old incarnation dropped"
        );
        assert_eq!(inst.resyncs, 1);
    }

    #[test]
    fn initial_full_sync_is_not_counted_as_resync() {
        let mut inst = Instance::new("a:1".into(), "127.0.0.1:1".parse().unwrap());
        inst.polls = 1;
        // First contact with a long-running instance: the hub's delta
        // window no longer reaches epoch 0, so the first chunk is full.
        inst.absorb(&chunk(0, 500, true, fragment(1, 9), &[(1, "f")]));
        assert_eq!(inst.resyncs, 0, "first sync is expected to be full");
        assert_eq!(inst.epoch, 500);
    }

    #[test]
    fn fleet_merges_same_names_and_separates_unnamed() {
        let agg = test_agg(2);
        {
            let mut instances = agg.instances.lock().unwrap();
            // Instance 0: "shared" is id 1. Instance 1: "shared" is id 9 —
            // divergent id spaces, same function.
            instances[0].absorb(&chunk(0, 1, false, fragment(1, 4), &[(1, "shared")]));
            instances[1].absorb(&chunk(0, 1, false, fragment(9, 6), &[(9, "shared")]));
            // Instance 1 also has an unnamed function.
            instances[1].absorb(&chunk(1, 2, false, fragment(7, 2), &[]));
        }
        let (fleet, names) = agg.fleet();
        assert_eq!(fleet.samples, 12);
        assert_eq!(fleet.totals().w, 12);
        // "shared" merged into ONE node; the unnamed func kept separate
        // under a synthetic per-instance name.
        let folded = report::render_folded_names(&fleet, &names);
        assert!(folded.contains("shared:1 10"), "folded:\n{folded}");
        assert!(folded.contains("inst1:func7:1 2"), "folded:\n{folded}");
        // Thread summaries are tid-offset per instance.
        let tids: Vec<usize> = fleet.threads.iter().map(|t| t.tid).collect();
        assert_eq!(tids, vec![0, TID_STRIDE]);
    }

    #[test]
    fn fleet_metrics_expose_totals_and_per_instance_series() {
        let agg = test_agg(2);
        {
            let mut instances = agg.instances.lock().unwrap();
            instances[0].absorb(&chunk(0, 1, false, fragment(1, 4), &[(1, "f")]));
            instances[0].healthy = true;
            instances[1].absorb(&chunk(0, 3, false, fragment(1, 6), &[(1, "f")]));
        }
        let text = render_fleet_metrics(&agg);
        assert!(text.contains("txsampler_fleet_instances 2"));
        assert!(text.contains("txsampler_fleet_instances_healthy 1"));
        assert!(text.contains("txsampler_fleet_samples_total 10"));
        assert!(text.contains(
            "txsampler_instance_samples_total{instance=\"0\",target=\"127.0.0.1:4000\"} 4"
        ));
        assert!(text.contains(
            "txsampler_instance_samples_total{instance=\"1\",target=\"127.0.0.1:4001\"} 6"
        ));
        assert!(
            text.contains("txsampler_instance_epoch{instance=\"1\",target=\"127.0.0.1:4001\"} 3")
        );
        assert!(text.contains("txsampler_instance_up{instance=\"0\",target=\"127.0.0.1:4000\"} 1"));
        assert!(text.contains("txsampler_instance_up{instance=\"1\",target=\"127.0.0.1:4001\"} 0"));

        let json = render_instances_json(&agg);
        assert!(json.starts_with("[{\"instance\":0,"));
        assert!(json.contains("\"target\":\"127.0.0.1:4001\""));
        assert!(json.contains("\"last_error\":null"));
    }

    #[test]
    fn dead_instances_back_off_exponentially_but_bounded() {
        // Nothing listens on the test ports: every attempted poll fails
        // fast with connection-refused.
        let agg = test_agg(1);
        const ROUNDS: u64 = 100;
        for _ in 0..ROUNDS {
            agg.poll_all();
        }
        let s = &agg.statuses()[0];
        assert!(!s.healthy);
        assert_eq!(s.polls, s.errors, "every attempted poll failed");
        assert_eq!(
            s.polls + s.backoffs,
            ROUNDS,
            "every round either polls or backs off"
        );
        // Exponential backoff sheds almost all of the rounds (1+3+7+15+31
        // skipped before the cap, then every 32nd round retries)...
        assert!(s.polls <= 10, "dead instance polled {} times", s.polls);
        // ...but the window is bounded: the instance is always retried
        // again within MAX_BACKOFF_POLLS rounds.
        assert!(s.backoff_remaining < MAX_BACKOFF_POLLS as u64);
        let json = render_instances_json(&agg);
        assert!(json.contains("\"backoffs\":"), "json: {json}");
        let metrics = render_fleet_metrics(&agg);
        assert!(
            metrics.contains("txsampler_instance_backoffs_total{instance=\"0\""),
            "metrics: {metrics}"
        );
    }

    #[test]
    fn poisoned_lock_recovers_and_is_counted() {
        let agg = Arc::new(test_agg(1));
        {
            let mut instances = agg.instances.lock().unwrap();
            instances[0].absorb(&chunk(0, 1, false, fragment(1, 4), &[(1, "f")]));
        }
        // Poison the lock: a thread panics while holding the guard.
        let poisoner = Arc::clone(&agg);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.instances.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(agg.instances.lock().is_err(), "lock must be poisoned");

        // Every public entry point recovers instead of panicking, the
        // absorbed state survives, and each recovery is counted.
        obs::set_enabled(true);
        let before = obs::registry().snapshot().get(Counter::AggLockRecoveries);
        let statuses = agg.statuses();
        assert_eq!(statuses[0].samples, 4, "state survives the poisoning");
        let (profile, _) = agg.instance_profile(0).expect("instance 0 exists");
        assert_eq!(profile.samples, 4);
        let (fleet, _) = agg.fleet();
        assert_eq!(fleet.samples, 4);
        agg.poll_all();
        let after = obs::registry().snapshot().get(Counter::AggLockRecoveries);
        obs::set_enabled(false);
        assert!(
            after >= before + 4,
            "four recoveries counted: {before} -> {after}"
        );
    }

    #[test]
    fn aggregator_rejects_empty_and_unresolvable_fleets() {
        assert!(Aggregator::new(&[]).is_err());
        assert!(Aggregator::new(&["not a host:port".into()]).is_err());
    }
}
