//! Live observability for the TxSampler reproduction.
//!
//! The offline pipeline (collect → merge → report) answers "what happened";
//! this crate answers "what is happening". It pairs with the epoch-based
//! [`txsampler::SnapshotHub`]: collectors publish per-thread deltas at
//! configurable boundaries, the hub merges them into a versioned cumulative
//! [`txsampler::Profile`], and [`LiveServer`] exposes that snapshot over
//! plain HTTP while collection keeps running:
//!
//! - `/healthz` — liveness probe (`ok`).
//! - `/metrics` — Prometheus text exposition: cycle shares per time
//!   component (cumulative and latest-window), abort counts and weight by
//!   cause, sharing diagnoses, and the profiler's own self-cost counters.
//! - `/profile.json` — the latest snapshot: epoch, sample count, time
//!   breakdown, and the full store-format text (with function names) as an
//!   embedded string, so `repro flamegraph` can consume a saved copy.
//! - `/flamegraph` — the snapshot's CCT as collapsed stacks (folded
//!   format), cycle-weighted, `_[tx]` marking speculative frames; pipe to
//!   flamegraph.pl or any flamegraph web viewer.
//!
//! Two more endpoints feed fleet-scale aggregation ([`agg`]):
//!
//! - `/delta?since=N` — the epoch-delta export: only the activity after
//!   epoch N (plus any func names first referenced since), serialized as a
//!   `txsampler-delta` chunk. Followers poll this instead of re-downloading
//!   the whole store.
//! - `/trend` — the hub's retained per-epoch trend rows as TSV, with a
//!   count of rows truncated off the front.
//!
//! The [`agg`] module follows N such servers and serves one merged pane
//! (`repro agg --follow host:port,host:port`).
//!
//! Everything is std-only — `std::net::TcpListener`, no external HTTP or
//! serialization dependencies — to keep the workspace offline-buildable.

#![warn(missing_docs)]

pub mod agg;
pub mod prometheus;
pub mod server;

pub use agg::{AggServer, Aggregator};
pub use server::{http_get, LiveServer};
