//! Byte-identical pin for the Prometheus exposition across the ProfileView
//! refactor: a fixed snapshot must render exactly the checked-in golden.
//! Regenerate deliberately with `BLESS=1 cargo test -p live
//! --test prometheus_golden`.

use obs::Registry;
use txsampler::cct::{NodeKey, ROOT};
use txsampler::{Metrics, Profile, SnapshotView, TimeComponent};
use txsim_pmu::{FuncId, Ip};

fn fixture_view() -> SnapshotView {
    let mut p = Profile::default();
    let n = p.cct.child(
        ROOT,
        NodeKey::Stmt {
            ip: Ip::new(FuncId(1), 4),
            speculative: false,
        },
    );
    for (component, times) in [
        (TimeComponent::Outside, 6),
        (TimeComponent::Tx, 2),
        (TimeComponent::Fallback, 1),
        (TimeComponent::LockWaiting, 2),
        (TimeComponent::Overhead, 1),
    ] {
        for _ in 0..times {
            p.cct.metrics_mut(n).add_cycles_sample(component);
        }
    }
    let m = p.cct.metrics_mut(n);
    m.commit_samples = 3;
    m.abort_samples = 3;
    m.abort_weight = 70;
    m.aborts_conflict = 2;
    m.conflict_weight = 40;
    m.aborts_capacity = 1;
    m.capacity_weight = 30;
    m.true_sharing = 1;
    m.false_sharing = 2;
    p.samples = 15;
    p.truncated_paths = 1;
    p.interrupt_abort_samples = 2;
    SnapshotView {
        epoch: 7,
        profile: p,
    }
}

#[test]
fn prometheus_exposition_is_pinned() {
    let view = fixture_view();
    let mut window = Metrics::default();
    window.add_cycles_sample(TimeComponent::Tx);
    window.add_cycles_sample(TimeComponent::Outside);
    let got = live::prometheus::render(&view, Some(&window), &Registry::new().snapshot());

    let path = format!("{}/tests/golden/prometheus.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with BLESS=1 to create)"));
    assert_eq!(got, want, "prometheus exposition drifted from its golden");
}
