//! Contention-manager contracts at the runtime layer: every policy keeps
//! contended counters exact, and none of them perturbs an uncontended
//! single-threaded run by so much as a cycle.

use std::sync::Arc;

use rtm_runtime::{CmKind, FallbackKind, TmLib};
use txsim_htm::{DomainConfig, HtmDomain, SamplingConfig};

#[test]
fn every_cm_keeps_contended_counter_exact() {
    // Zero retries push every conflicting section straight into the STM,
    // so the contention manager is in the loop for every commit: yields,
    // stalls and escalations all happen while six threads race on one
    // line. The counter staying exact is the proof that no intervention
    // loses or double-applies a transaction.
    for cm in CmKind::ALL {
        let d = HtmDomain::new(DomainConfig::default().cooperative());
        let lib = TmLib::with_cm(&d, 0, FallbackKind::Stm, cm);
        let counter = d.heap.alloc_words(1);
        const THREADS: usize = 6;
        const ITERS: u64 = 1_000;

        let barrier = std::sync::Barrier::new(THREADS);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let d = Arc::clone(&d);
                    let lib = Arc::clone(&lib);
                    let barrier = &barrier;
                    s.spawn(move || {
                        let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                        let mut tm = lib.thread();
                        barrier.wait();
                        for _ in 0..ITERS {
                            tm.critical_section(&mut cpu, 10, |cpu| {
                                cpu.rmw(11, counter, |v| v + 1).map(|_| ())
                            });
                        }
                        tm.truth
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(
            d.mem.load(counter),
            THREADS as u64 * ITERS,
            "lost updates under --cm {cm}"
        );
        assert_eq!(d.mem.load(lib.lock_addr()), 0, "gate must drain ({cm})");
        let mut total = rtm_runtime::Truth::default();
        for truth in &results {
            total.merge(truth);
        }
        let t = total.totals();
        assert_eq!(
            t.htm_commits + t.fallbacks,
            THREADS as u64 * ITERS,
            "completion count under --cm {cm}"
        );
        assert!(
            t.stm_commits > 0,
            "contention must drive sections into STM ({cm})"
        );
    }
}

#[test]
fn single_thread_runs_are_cycle_identical_across_policies() {
    // The CM only acts on contention. With one thread there is none, so
    // every policy must execute the exact same simulated cycle count as
    // the backoff default and book zero interventions — the subsystem's
    // "free when idle" contract.
    let mut cycles_by_cm = Vec::new();
    for cm in CmKind::ALL {
        let d = HtmDomain::new(DomainConfig::default().cooperative());
        let lib = TmLib::with_cm(&d, 0, FallbackKind::Stm, cm);
        let counter = d.heap.alloc_words(1);
        let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
        let mut tm = lib.thread();
        for _ in 0..500 {
            tm.critical_section(&mut cpu, 10, |cpu| {
                cpu.rmw(11, counter, |v| v + 1)?;
                cpu.compute(12, 25)
            });
        }
        assert_eq!(d.mem.load(counter), 500);
        assert!(
            tm.cm_stats.is_empty(),
            "--cm {cm} must not intervene uncontended"
        );
        cycles_by_cm.push((cm, cpu.cycles()));
    }
    let (_, baseline) = cycles_by_cm[0];
    for (cm, cycles) in &cycles_by_cm {
        assert_eq!(
            *cycles, baseline,
            "--cm {cm} must be cycle-identical to backoff single-threaded"
        );
    }
}
