//! Behavioural tests of the RTM runtime: retry policy, fallback
//! serialization, state-word transitions and ground-truth accounting.

use std::sync::Arc;

use rtm_runtime::{ThreadState, TmLib};
use txsim_htm::{CacheGeometry, DomainConfig, EventKind, HtmDomain, SamplingConfig};
use txsim_pmu::{Frame, Sample, SampleSink};

#[test]
fn single_thread_counter_commits_in_htm() {
    let d = HtmDomain::with_defaults();
    let lib = TmLib::new(&d);
    let counter = d.heap.alloc_words(1);
    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
    let mut tm = lib.thread();

    for _ in 0..100 {
        tm.critical_section(&mut cpu, 10, |cpu| {
            cpu.rmw(11, counter, |v| v + 1).map(|_| ())
        });
    }
    assert_eq!(d.mem.load(counter), 100);
    let t = tm.truth.totals();
    assert_eq!(t.htm_commits, 100, "uncontended sections must all commit");
    assert_eq!(t.fallbacks, 0);
    assert_eq!(t.total_aborts(), 0);
}

#[test]
fn sync_abort_falls_back_immediately() {
    let d = HtmDomain::with_defaults();
    let lib = TmLib::new(&d);
    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
    let mut tm = lib.thread();
    let out = d.heap.alloc_words(1);

    tm.critical_section(&mut cpu, 10, |cpu| {
        cpu.syscall(11)?; // aborts the HTM attempt, runs fine in fallback
        cpu.store(12, out, 7)
    });
    assert_eq!(d.mem.load(out), 7);
    let t = tm.truth.totals();
    assert_eq!(t.aborts_sync, 1, "exactly one attempt, no retries for sync");
    assert_eq!(t.fallbacks, 1);
    assert_eq!(t.htm_commits, 0);
}

#[test]
fn capacity_abort_falls_back_immediately() {
    let d = HtmDomain::new(DomainConfig::default().with_geometry(CacheGeometry::tiny()));
    let lib = TmLib::new(&d);
    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
    let mut tm = lib.thread();
    let g = d.geometry;
    let base = d.heap.alloc_aligned(g.line_bytes * 64, g.line_bytes);

    tm.critical_section(&mut cpu, 10, |cpu| {
        for i in 0..40u64 {
            cpu.store(11, base + i * g.line_bytes, i)?;
        }
        Ok(())
    });
    for i in 0..40u64 {
        assert_eq!(d.mem.load(base + i * g.line_bytes), i);
    }
    let t = tm.truth.totals();
    assert_eq!(t.aborts_capacity, 1);
    assert_eq!(t.fallbacks, 1);
}

#[test]
fn conflicts_are_retried_then_fall_back() {
    // Conflicts are a virtual-time property: use the cooperative scheduler
    // so thread interleaving does not depend on host core count.
    let d = HtmDomain::new(DomainConfig::default().cooperative());
    let lib = TmLib::new(&d);
    let counter = d.heap.alloc_words(1);
    const THREADS: usize = 6;
    const ITERS: u64 = 3_000;

    let barrier = std::sync::Barrier::new(THREADS);
    let truths: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let d = Arc::clone(&d);
                let lib = Arc::clone(&lib);
                let barrier = &barrier;
                s.spawn(move || {
                    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                    let mut tm = lib.thread();
                    barrier.wait();
                    for _ in 0..ITERS {
                        tm.critical_section(&mut cpu, 10, |cpu| {
                            cpu.rmw(11, counter, |v| v + 1).map(|_| ())
                        });
                    }
                    tm.truth
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(d.mem.load(counter), THREADS as u64 * ITERS, "lost updates");
    let mut total = rtm_runtime::Truth::default();
    for t in &truths {
        total.merge(t);
    }
    let t = total.totals();
    assert_eq!(
        t.htm_commits + t.fallbacks,
        THREADS as u64 * ITERS,
        "every section executes exactly once"
    );
    assert!(t.aborts_conflict > 0, "contended counter must conflict");
}

#[test]
fn fallback_serializes_against_transactions() {
    // One thread stuck in fallback (sync abort) while others speculate:
    // the counter must stay exact because the lock store dooms speculators.
    let d = HtmDomain::new(DomainConfig::default().cooperative());
    let lib = TmLib::new(&d);
    let counter = d.heap.alloc_words(1);
    const ITERS: u64 = 500;

    std::thread::scope(|s| {
        // The fallback-heavy thread.
        {
            let d = Arc::clone(&d);
            let lib = Arc::clone(&lib);
            s.spawn(move || {
                let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                let mut tm = lib.thread();
                for _ in 0..ITERS {
                    tm.critical_section(&mut cpu, 20, |cpu| {
                        cpu.syscall(21)?;
                        cpu.rmw(22, counter, |v| v + 1).map(|_| ())
                    });
                }
            });
        }
        // Speculating threads.
        for _ in 0..4 {
            let d = Arc::clone(&d);
            let lib = Arc::clone(&lib);
            s.spawn(move || {
                let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                let mut tm = lib.thread();
                for _ in 0..ITERS {
                    tm.critical_section(&mut cpu, 30, |cpu| {
                        cpu.rmw(31, counter, |v| v + 1).map(|_| ())
                    });
                }
            });
        }
    });

    assert_eq!(d.mem.load(counter), 5 * ITERS);
}

/// Sink that records the runtime state flags seen at each sample.
struct StateProbe {
    state: ThreadState,
    seen: Arc<std::sync::Mutex<Vec<(Sample, u32)>>>,
}

impl SampleSink for StateProbe {
    fn on_sample(&mut self, sample: &Sample, _stack: &[Frame]) {
        self.seen
            .lock()
            .unwrap()
            .push((sample.clone(), self.state.query().0));
    }
}

#[test]
fn state_word_transitions_are_visible_to_sampler() {
    let d = HtmDomain::with_defaults();
    let lib = TmLib::new(&d);
    let counter = d.heap.alloc_words(1);
    let mut cpu = d.spawn_cpu(SamplingConfig::only(EventKind::Cycles, 400));
    let mut tm = lib.thread();
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    cpu.set_sink(Box::new(StateProbe {
        state: tm.state_handle(),
        seen: Arc::clone(&seen),
    }));

    for _ in 0..2_000 {
        tm.critical_section(&mut cpu, 10, |cpu| {
            cpu.compute(11, 50)?;
            cpu.rmw(12, counter, |v| v + 1).map(|_| ())
        });
        // Non-CS work between sections.
        cpu.compute(5, 100).unwrap();
    }

    let seen = seen.lock().unwrap();
    assert!(!seen.is_empty(), "sampling must deliver samples");
    let in_cs = seen
        .iter()
        .filter(|(_, s)| rtm_runtime::StateFlags(*s).in_cs())
        .count();
    let outside = seen.len() - in_cs;
    assert!(in_cs > 0, "some samples must land inside critical sections");
    assert!(outside > 0, "some samples must land outside");

    // Challenge I invariant: every sample that aborted a transaction must
    // have been taken while the state word said inHTM.
    for (sample, state) in seen.iter() {
        if sample.caused_abort {
            assert!(
                rtm_runtime::StateFlags(*state).in_htm(),
                "abort-causing samples occur only on the HTM path"
            );
        }
    }
}

#[test]
fn lock_held_elision_aborts_do_not_burn_retries() {
    // Hold the lock from a plain CPU; a critical section on another thread
    // must still eventually succeed in HTM (not fall back) once released.
    let d = HtmDomain::with_defaults();
    let lib = TmLib::new(&d);
    let counter = d.heap.alloc_words(1);
    let lock = lib.lock_addr();

    let mut holder = d.spawn_cpu(SamplingConfig::disabled());
    assert_eq!(holder.cas(1, lock, 0, 1).unwrap(), Ok(0));

    let worker = {
        let d = Arc::clone(&d);
        let lib = Arc::clone(&lib);
        std::thread::spawn(move || {
            let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
            let mut tm = lib.thread();
            tm.critical_section(&mut cpu, 10, |cpu| {
                cpu.rmw(11, counter, |v| v + 1).map(|_| ())
            });
            tm.truth
        })
    };

    std::thread::sleep(std::time::Duration::from_millis(20));
    holder.store_forced(2, lock, 0).unwrap();
    let truth = worker.join().unwrap();

    assert_eq!(d.mem.load(counter), 1);
    let t = truth.totals();
    assert_eq!(t.htm_commits, 1, "must commit in HTM after the lock frees");
    assert_eq!(t.fallbacks, 0, "lock-held aborts must not trigger fallback");
}

#[test]
fn backend_parity_single_thread() {
    use rtm_runtime::FallbackKind;

    // The identical single-threaded workload under each backend: 200 clean
    // sections (which commit in HTM) followed by 50 capacity-overflow
    // sections (which are forced onto the fallback path).
    let run = |kind: FallbackKind| {
        let d = HtmDomain::new(DomainConfig::default().with_geometry(CacheGeometry::tiny()));
        let lib = TmLib::with_config(&d, 5, kind);
        let g = d.geometry;
        let counter = d.heap.alloc_words(1);
        let region = d.heap.alloc_aligned(g.line_bytes * 64, g.line_bytes);
        let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
        let mut tm = lib.thread();
        for _ in 0..200 {
            tm.critical_section(&mut cpu, 10, |cpu| {
                cpu.compute(11, 20)?;
                cpu.rmw(12, counter, |v| v + 1).map(|_| ())
            });
        }
        let htm_phase_cycles = cpu.cycles();
        for _ in 0..50 {
            tm.critical_section(&mut cpu, 20, |cpu| {
                for i in 0..40u64 {
                    cpu.rmw(21, region + i * g.line_bytes, |v| v + 1)?;
                }
                Ok(())
            });
        }
        let memory = d.mem.load(counter) + d.mem.load(region);
        (htm_phase_cycles, memory, tm.truth.totals(), *cpu.stats())
    };

    let lock = run(FallbackKind::Lock);
    let stm = run(FallbackKind::Stm);
    let adaptive = run(FallbackKind::Adaptive);

    // While no section falls back the backend must be pay-for-use: the HTM
    // fast path is cycle-identical whichever backend is configured.
    assert_eq!(lock.0, stm.0, "HTM-phase cycles must match exactly");
    assert_eq!(lock.0, adaptive.0, "adaptive adds no HTM-phase cycles");
    assert_eq!(lock.2.htm_commits, stm.2.htm_commits);
    assert_eq!(lock.2.htm_commits, adaptive.2.htm_commits);
    // Commit counts: every section executes exactly once on both sides,
    // and the memory effects agree.
    assert_eq!(lock.2.htm_commits + lock.2.fallbacks, 250);
    assert_eq!(stm.2.htm_commits + stm.2.fallbacks, 250);
    assert_eq!(lock.1, stm.1, "memory effects must be identical");
    // A single-threaded software transaction can never fail validation
    // (the TL2 rv+1 == wv short-circuit), and the lock backend never runs
    // any software transaction at all.
    assert_eq!(stm.3.aborts_validation, 0);
    assert_eq!(lock.2.stm_commits, 0);
    assert_eq!(
        stm.2.stm_commits, stm.2.fallbacks,
        "every forced fallback must commit as a software transaction"
    );
    assert!(stm.2.stm_commits > 0);
    // The adaptive backend sees the same single-threaded history: the
    // capacity-overflow phase drives its one misbehaving site onto the
    // STM, it never fails validation, and memory effects still agree.
    assert_eq!(adaptive.2.htm_commits + adaptive.2.fallbacks, 250);
    assert_eq!(lock.1, adaptive.1, "memory effects must be identical");
    assert_eq!(adaptive.3.aborts_validation, 0);
    assert!(adaptive.2.backend_switches > 0, "overflow site must switch");
    assert!(adaptive.2.stm_commits > 0);
}

#[test]
fn stm_backend_keeps_contended_counter_exact() {
    // Zero retries push every conflicting section straight into the STM,
    // so concurrent software transactions race on one line: stripe locks,
    // validation, publish — the whole TL2 pipeline under fire. The counter
    // staying exact is the proof the gate and publish protocol hold up.
    let d = HtmDomain::new(DomainConfig::default().cooperative());
    let lib = TmLib::with_config(&d, 0, rtm_runtime::FallbackKind::Stm);
    let counter = d.heap.alloc_words(1);
    const THREADS: usize = 6;
    const ITERS: u64 = 1_000;

    let barrier = std::sync::Barrier::new(THREADS);
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let d = Arc::clone(&d);
                let lib = Arc::clone(&lib);
                let barrier = &barrier;
                s.spawn(move || {
                    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                    let mut tm = lib.thread();
                    barrier.wait();
                    for _ in 0..ITERS {
                        tm.critical_section(&mut cpu, 10, |cpu| {
                            cpu.rmw(11, counter, |v| v + 1).map(|_| ())
                        });
                    }
                    (tm.truth, *cpu.stats())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(d.mem.load(counter), THREADS as u64 * ITERS, "lost updates");
    assert_eq!(d.mem.load(lib.lock_addr()), 0, "gate must drain");
    let mut total = rtm_runtime::Truth::default();
    let mut stm_commits_stat = 0;
    for (truth, stats) in &results {
        total.merge(truth);
        stm_commits_stat += stats.stm_commits;
    }
    let t = total.totals();
    assert_eq!(t.htm_commits + t.fallbacks, THREADS as u64 * ITERS);
    assert!(t.stm_commits > 0, "contention must drive sections into STM");
    assert!(
        t.stm_commits <= t.fallbacks,
        "STM commits are a fallback subset"
    );
    assert_eq!(t.stm_commits, stm_commits_stat, "truth and CPU stats agree");
}

#[test]
fn hle_backend_keeps_contended_counter_exact() {
    let d = HtmDomain::new(DomainConfig::default().cooperative());
    let lib = TmLib::with_config(&d, 0, rtm_runtime::FallbackKind::Hle);
    let counter = d.heap.alloc_words(1);
    const THREADS: usize = 4;
    const ITERS: u64 = 1_000;

    let barrier = std::sync::Barrier::new(THREADS);
    let truths: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let d = Arc::clone(&d);
                let lib = Arc::clone(&lib);
                let barrier = &barrier;
                s.spawn(move || {
                    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                    let mut tm = lib.thread();
                    barrier.wait();
                    for _ in 0..ITERS {
                        tm.critical_section(&mut cpu, 10, |cpu| {
                            cpu.rmw(11, counter, |v| v + 1).map(|_| ())
                        });
                    }
                    tm.truth
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(d.mem.load(counter), THREADS as u64 * ITERS, "lost updates");
    assert_eq!(d.mem.load(lib.lock_addr()), 0, "lock must be released");
    let mut total = rtm_runtime::Truth::default();
    for t in &truths {
        total.merge(t);
    }
    let t = total.totals();
    assert_eq!(t.htm_commits + t.fallbacks, THREADS as u64 * ITERS);
    assert_eq!(t.stm_commits, 0, "HLE never runs software transactions");
}

#[test]
fn named_critical_section_attributes_to_function() {
    let d = HtmDomain::with_defaults();
    let lib = TmLib::new(&d);
    let f = d.funcs.intern("update_stats", "app.rs", 100);
    let counter = d.heap.alloc_words(1);
    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
    let mut tm = lib.thread();

    rtm_runtime::named_critical_section(&mut tm, &mut cpu, f, 101, |cpu| {
        cpu.rmw(102, counter, |v| v + 1).map(|_| ())
    });

    let (site, stats) = tm.truth.iter().next().unwrap();
    assert_eq!(site.func, f, "site must carry the enclosing function");
    assert_eq!(stats.htm_commits, 1);
}
