//! Per-site contention-management counters.
//!
//! Every intervention a [`txstm::cm::ContentionManager`] makes — a yield at
//! begin, a stall instead of backoff, an escalation to the exclusive gate, a
//! priority abort — is booked here against the critical-section site that
//! paid for it. The table is thread-private (the runtime's usual rule: the
//! hot path writes no shared cache line) and drained by profiling harnesses
//! via [`CmTable::take_delta`], exactly like the site histograms.
//!
//! Interventions only happen on the contended slow path (a failed commit or
//! a non-empty karma board), so unlike [`crate::HistTable`] this table does
//! not need a fixed-capacity open-addressed layout: a plain map is fine —
//! an uncontended run never touches it at all.

use std::collections::HashMap;

use txsim_htm::Ip;

/// Contention-management interventions at one site. The counters mirror the
/// [`txstm::cm`] hook contract: `yields` and `stalls` are waiting the policy
/// injected, `escalations` are forced serial commits, `priority_aborts` are
/// aborts attributed to losing karma arbitration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmStats {
    /// Begin-time deferrals to a higher-karma peer.
    pub yields: u64,
    /// Brief fixed stalls taken (by the top-karma transaction) instead of
    /// exponential backoff.
    pub stalls: u64,
    /// Escalations to the exclusive gate (forced/irrevocable commits) the
    /// policy decided — including the backoff policy's `max_attempts`
    /// escape hatch.
    pub escalations: u64,
    /// Aborts a transaction took because a higher-karma peer had priority.
    pub priority_aborts: u64,
}

impl CmStats {
    /// Total interventions of any kind.
    pub fn total(&self) -> u64 {
        self.yields + self.stalls + self.escalations + self.priority_aborts
    }

    /// Whether nothing was booked.
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }

    /// Add `other` in (profile merge).
    pub fn merge(&mut self, other: &CmStats) {
        self.yields += other.yields;
        self.stalls += other.stalls;
        self.escalations += other.escalations;
        self.priority_aborts += other.priority_aborts;
    }

    /// Saturating per-field difference (epoch-delta export).
    pub fn minus(&self, older: &CmStats) -> CmStats {
        CmStats {
            yields: self.yields.saturating_sub(older.yields),
            stalls: self.stalls.saturating_sub(older.stalls),
            escalations: self.escalations.saturating_sub(older.escalations),
            priority_aborts: self.priority_aborts.saturating_sub(older.priority_aborts),
        }
    }

    /// Book one event.
    pub fn note(&mut self, event: CmEvent) {
        match event {
            CmEvent::Yield => self.yields += 1,
            CmEvent::Stall => self.stalls += 1,
            CmEvent::Escalation => self.escalations += 1,
            CmEvent::PriorityAbort => self.priority_aborts += 1,
        }
    }
}

/// One contention-management intervention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmEvent {
    /// Deferred at begin to a higher-karma peer.
    Yield,
    /// Stalled briefly instead of backing off.
    Stall,
    /// Escalated to the exclusive gate.
    Escalation,
    /// Aborted in deference to a higher-karma peer.
    PriorityAbort,
}

impl From<txstm::cm::CmIntervention> for CmEvent {
    fn from(iv: txstm::cm::CmIntervention) -> CmEvent {
        match iv {
            txstm::cm::CmIntervention::Yielded => CmEvent::Yield,
            txstm::cm::CmIntervention::Stalled => CmEvent::Stall,
        }
    }
}

/// Thread-private per-site CM counter table.
#[derive(Debug, Default)]
pub struct CmTable {
    sites: HashMap<Ip, CmStats>,
}

impl CmTable {
    /// An empty table.
    pub fn new() -> CmTable {
        CmTable::default()
    }

    /// Book `event` against `site`.
    pub fn note(&mut self, site: Ip, event: CmEvent) {
        self.sites.entry(site).or_default().note(event);
    }

    /// This site's counters, if any intervention was booked there.
    pub fn get(&self, site: Ip) -> Option<&CmStats> {
        self.sites.get(&site)
    }

    /// Whether any intervention was booked at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Drain everything accumulated since the last call (the harness folds
    /// the delta into the run profile).
    pub fn take_delta(&mut self) -> Vec<(Ip, CmStats)> {
        self.sites.drain().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(line: u32) -> Ip {
        Ip::new(txsim_htm::FuncId(7), line)
    }

    #[test]
    fn note_merge_minus_round_trip() {
        let mut t = CmTable::new();
        assert!(t.is_empty());
        t.note(site(1), CmEvent::Yield);
        t.note(site(1), CmEvent::Stall);
        t.note(site(1), CmEvent::Stall);
        t.note(site(2), CmEvent::Escalation);
        t.note(site(2), CmEvent::PriorityAbort);
        let s1 = *t.get(site(1)).unwrap();
        assert_eq!((s1.yields, s1.stalls), (1, 2));
        assert_eq!(s1.total(), 3);

        let mut merged = CmStats::default();
        for (_, s) in t.take_delta() {
            merged.merge(&s);
        }
        assert!(t.is_empty(), "take_delta drains");
        assert_eq!(merged.total(), 5);
        let older = CmStats {
            yields: 1,
            ..CmStats::default()
        };
        assert_eq!(merged.minus(&older).yields, 0);
        assert_eq!(merged.minus(&older).stalls, 2);
        assert!(CmStats::default().is_zero());
    }
}
