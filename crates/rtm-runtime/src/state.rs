//! The thread-private execution-state word and its query function —
//! the paper's proposed ~20-line extension to HTM runtime libraries (§3.2).
//!
//! The runtime keeps five flags, encoded in one word, that tell a profiler
//! *which component of a critical section* the thread is executing:
//! `inCS`, `inHTM`, `inFallback`, `inLockWaiting`, `inOverhead`. The flags
//! are thread-private (only the owning thread writes them), so maintaining
//! them costs a single uncontended atomic store per transition; the profiler
//! reads them from its sample handler on the same thread.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Executing anywhere inside a critical section.
pub const IN_CS: u32 = 1 << 0;
/// Executing the speculative (HTM) path.
pub const IN_HTM: u32 = 1 << 1;
/// Executing the fallback (slow) path under the global lock.
pub const IN_FALLBACK: u32 = 1 << 2;
/// Spinning for the global lock to become free.
pub const IN_LOCK_WAITING: u32 = 1 << 3;
/// Transaction bookkeeping: begin/retry/cleanup code.
pub const IN_OVERHEAD: u32 = 1 << 4;
/// On the fallback path *as a software transaction* (TL2 STM backend).
/// Always set together with [`IN_FALLBACK`]; profilers that do not care
/// about the fallback flavor can keep ignoring it.
pub const IN_STM: u32 = 1 << 5;

/// A decoded snapshot of the state word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateFlags(pub u32);

impl StateFlags {
    /// Inside a critical section?
    #[inline]
    pub fn in_cs(self) -> bool {
        self.0 & IN_CS != 0
    }
    /// On the transactional path?
    #[inline]
    pub fn in_htm(self) -> bool {
        self.0 & IN_HTM != 0
    }
    /// On the fallback path?
    #[inline]
    pub fn in_fallback(self) -> bool {
        self.0 & IN_FALLBACK != 0
    }
    /// Waiting for the global lock?
    #[inline]
    pub fn in_lock_waiting(self) -> bool {
        self.0 & IN_LOCK_WAITING != 0
    }
    /// In transaction setup/retry/cleanup code?
    #[inline]
    pub fn in_overhead(self) -> bool {
        self.0 & IN_OVERHEAD != 0
    }
    /// Speculating in software (STM fallback)?
    #[inline]
    pub fn in_stm(self) -> bool {
        self.0 & IN_STM != 0
    }
}

/// The shared state word. The runtime holds one per thread and updates it at
/// component boundaries; the profiler clones the handle and calls
/// [`ThreadState::query`] from its sample handler — the paper's
/// `GetState()`.
#[derive(Clone, Debug, Default)]
pub struct ThreadState(Arc<AtomicU32>);

impl ThreadState {
    /// Create a state word with all flags clear.
    pub fn new() -> Self {
        ThreadState::default()
    }

    /// Runtime-side: replace the flags.
    #[inline]
    pub fn set(&self, bits: u32) {
        self.0.store(bits, Ordering::Release);
    }

    /// Profiler-side: the state query function.
    #[inline]
    pub fn query(&self) -> StateFlags {
        StateFlags(self.0.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_decode() {
        let f = StateFlags(IN_CS | IN_HTM);
        assert!(f.in_cs());
        assert!(f.in_htm());
        assert!(!f.in_fallback());
        assert!(!f.in_lock_waiting());
        assert!(!f.in_overhead());
    }

    #[test]
    fn handle_is_shared() {
        let state = ThreadState::new();
        let profiler_view = state.clone();
        state.set(IN_CS | IN_LOCK_WAITING);
        assert!(profiler_view.query().in_lock_waiting());
        state.set(0);
        assert!(!profiler_view.query().in_cs());
    }

    #[test]
    fn bits_are_distinct() {
        let all = [
            IN_CS,
            IN_HTM,
            IN_FALLBACK,
            IN_LOCK_WAITING,
            IN_OVERHEAD,
            IN_STM,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_eq!(a & b, 0);
            }
        }
    }
}
