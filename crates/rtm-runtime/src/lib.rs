//! The RTM runtime library: lock-elided critical sections (`TM_BEGIN` /
//! `TM_END`) with the paper's profiler-facing state extension.
//!
//! This is the library the paper adapts from Yoo et al. and extends with
//! ~21 lines (§3.2, §6): a critical section first attempts hardware
//! transactions (after waiting for the global fallback lock to be free),
//! retries transient aborts up to a budget, and finally falls back to
//! acquiring the global lock and running the same user code
//! non-speculatively. Throughout, a thread-private state word records which
//! component is executing — `inCS`, `inHTM`, `inFallback`, `inLockWaiting`,
//! `inOverhead` — and a query function exposes it to profilers.
//!
//! ```
//! use txsim_htm::{HtmDomain, SamplingConfig};
//! use rtm_runtime::TmLib;
//!
//! let domain = HtmDomain::with_defaults();
//! let lib = TmLib::new(&domain);
//! let counter = domain.heap.alloc_words(1);
//!
//! let mut cpu = domain.spawn_cpu(SamplingConfig::disabled());
//! let mut tm = lib.thread();
//! for _ in 0..10 {
//!     tm.critical_section(&mut cpu, 42, |cpu| {
//!         cpu.rmw(43, counter, |v| v + 1)?;
//!         Ok(())
//!     });
//! }
//! assert_eq!(domain.mem.load(counter), 10);
//! assert_eq!(tm.truth.totals().htm_commits + tm.truth.totals().fallbacks, 10);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cm_stats;
pub mod hist;
pub mod hle;
pub mod sites;
pub mod state;
pub mod truth;

use std::sync::Arc;

use obs::{Counter, Subsystem};
use txsim_htm::{AbortInfo, Addr, FuncId, HtmDomain, Ip, SimCpu, TxResult, XABORT_LOCK_HELD};
use txsim_pmu::AbortClass;
use txstm::cm::{make_cm, ContentionManager, TxCm};
use txstm::Tl2;

pub use backend::{
    AdaptiveBackend, Backend, FallbackBackend, FallbackKind, GlobalLock, SingleGlobalLockElided,
    Tl2Stm, GATE_EXCLUSIVE,
};
pub use cm_stats::{CmEvent, CmStats, CmTable};
pub use hist::{Hist32, HistTable, SiteHists, HIST_BUCKETS, HIST_SITE_CAPACITY};
pub use hle::HleLock;
pub use sites::{AdaptivePolicy, SitePlan, SiteSnapshot, SiteTable, SITE_CAPACITY};
pub use state::{
    StateFlags, ThreadState, IN_CS, IN_FALLBACK, IN_HTM, IN_LOCK_WAITING, IN_OVERHEAD, IN_STM,
};
pub use truth::{SiteTruth, Truth};
pub use txstm::cm::{CmKind, DEFAULT_ESCALATE_AFTER};

/// Global (per-domain) RTM library state: the elided fallback lock and the
/// retry policy.
pub struct TmLib {
    /// Address of the global fallback lock word, alone on its cache line.
    lock_addr: Addr,
    /// The runtime's own symbol: `TM_END` returns through library code,
    /// whose (non-transactional) call/return branches appear in the LBR
    /// and delimit one transaction's in-tsx records from the next — the
    /// profiler's reconstruction depends on that boundary.
    f_tm_end: FuncId,
    /// Transient aborts tolerated before taking the fallback path.
    /// The paper's evaluation uses 5.
    pub max_retries: u32,
    /// The fallback execution policy (see [`backend`]).
    backend: Backend,
    /// The contention manager (see [`txstm::cm`]). Shared with the STM
    /// backend; the section-begin and completion hooks run here so karma
    /// earned on the fallback path is reset exactly once per section.
    cm: Arc<dyn ContentionManager>,
}

impl TmLib {
    /// Create the library for a domain, allocating the global lock word on
    /// its own cache line (the lock must not false-share with user data —
    /// every transaction reads it). Uses the default [`GlobalLock`]
    /// fallback backend.
    pub fn new(domain: &Arc<HtmDomain>) -> Arc<TmLib> {
        TmLib::with_retries(domain, 5)
    }

    /// Same, with a custom retry budget.
    pub fn with_retries(domain: &Arc<HtmDomain>, max_retries: u32) -> Arc<TmLib> {
        TmLib::with_config(domain, max_retries, FallbackKind::Lock)
    }

    /// Same, selecting the fallback backend (default retry budget).
    pub fn with_backend(domain: &Arc<HtmDomain>, kind: FallbackKind) -> Arc<TmLib> {
        TmLib::with_config(domain, 5, kind)
    }

    /// Same as [`TmLib::with_config`], selecting the contention manager
    /// too (default retry budget).
    pub fn with_backend_and_cm(
        domain: &Arc<HtmDomain>,
        kind: FallbackKind,
        cm: CmKind,
    ) -> Arc<TmLib> {
        TmLib::with_cm(domain, 5, kind, cm)
    }

    /// Fully explicit construction: retry budget and fallback backend,
    /// with the default [`CmKind::Backoff`] contention manager.
    pub fn with_config(
        domain: &Arc<HtmDomain>,
        max_retries: u32,
        kind: FallbackKind,
    ) -> Arc<TmLib> {
        TmLib::with_cm(domain, max_retries, kind, CmKind::Backoff)
    }

    /// Fully explicit construction: retry budget, fallback backend, and
    /// contention manager. The CM only influences software transactions,
    /// so it is threaded into the STM-capable backends; under `lock`/`hle`
    /// fallbacks it never intervenes (no karma is ever earned).
    pub fn with_cm(
        domain: &Arc<HtmDomain>,
        max_retries: u32,
        kind: FallbackKind,
        cm_kind: CmKind,
    ) -> Arc<TmLib> {
        let cm = make_cm(cm_kind);
        let lock_addr = domain.heap.alloc_padded(8, domain.geometry.line_bytes);
        let backend = match kind {
            FallbackKind::Lock => Backend::Lock(GlobalLock),
            FallbackKind::Stm => Backend::Stm(Tl2Stm::with_cm(
                Tl2::new(domain, lock_addr),
                Arc::clone(&cm),
            )),
            FallbackKind::Hle => Backend::Hle(SingleGlobalLockElided),
            FallbackKind::Adaptive => Backend::Adaptive(AdaptiveBackend::with_cm(
                Tl2::new(domain, lock_addr),
                Arc::clone(&cm),
            )),
        };
        Arc::new(TmLib {
            lock_addr,
            f_tm_end: domain.funcs.intern("TM_END", "rtm_runtime.rs", 1),
            max_retries,
            backend,
            cm,
        })
    }

    /// Address of the global lock word (tests and diagnostics).
    pub fn lock_addr(&self) -> Addr {
        self.lock_addr
    }

    /// The configured fallback backend's kind.
    pub fn fallback_kind(&self) -> FallbackKind {
        self.backend.kind()
    }

    /// The configured contention manager's kind.
    pub fn cm_kind(&self) -> CmKind {
        self.cm.kind()
    }

    /// Create the per-thread runtime handle. Threads of an adaptive
    /// library get a live (fixed-capacity, thread-private) [`SiteTable`];
    /// static libraries hand out the zero-capacity detached table, so the
    /// per-site machinery costs one branch per hook.
    pub fn thread(self: &Arc<Self>) -> TmThread {
        let sites = match self.backend {
            Backend::Adaptive(_) => SiteTable::new(AdaptivePolicy::DEFAULT, self.max_retries),
            _ => SiteTable::detached(),
        };
        TmThread {
            lib: Arc::clone(self),
            state: ThreadState::new(),
            truth: Truth::default(),
            sites,
            hists: HistTable::detached(),
            cm_stats: CmTable::new(),
            cm_tx: TxCm::default(),
            fb_attempts: 0,
        }
    }
}

/// Per-thread runtime state: the state word and ground-truth counters.
pub struct TmThread {
    lib: Arc<TmLib>,
    pub(crate) state: ThreadState,
    /// Exact per-site instrumentation (validation only — see [`truth`]).
    pub truth: Truth,
    /// Per-site adaptive statistics (live only under the adaptive backend).
    pub sites: SiteTable,
    /// Per-site latency/retry-depth histograms (detached — one branch per
    /// section — until a profiling harness calls [`TmThread::enable_hists`]).
    pub hists: HistTable,
    /// Per-site contention-management interventions (yields, stalls,
    /// escalations, priority aborts). Only the contended slow path writes
    /// here.
    pub cm_stats: CmTable,
    /// The running section's contention-management state (karma).
    pub(crate) cm_tx: TxCm,
    /// Software attempts the current fallback execution made (set by the
    /// backend): the STM reports its commit attempts so the retry-depth
    /// histogram sees software starvation, not just the hardware budget.
    pub(crate) fb_attempts: u32,
}

impl TmThread {
    /// Handle to this thread's state word for the profiler — the paper's
    /// proposed runtime extension (`GetState()`).
    pub fn state_handle(&self) -> ThreadState {
        self.state.clone()
    }

    /// Attach the per-site histogram table. Called by profiling harnesses;
    /// without it every completion pays exactly one branch and stores
    /// nothing (the zero-cost-when-detached contract).
    pub fn enable_hists(&mut self) {
        self.hists = HistTable::new();
    }

    /// Execute `body` as a critical section beginning at source `line`
    /// (`TM_BEGIN` … `TM_END`).
    ///
    /// The same `body` runs on the HTM path — where any simulated
    /// instruction may abort, surfacing as `Err` which `body` propagates —
    /// and on the fallback path, where instructions never fail. Aborted
    /// attempts discard their memory writes, so re-running the body is the
    /// standard transactional contract.
    pub fn critical_section<T>(
        &mut self,
        cpu: &mut SimCpu,
        line: u32,
        mut body: impl FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        let lock = self.lib.lock_addr;
        let site = Ip::new(cpu.cur_ip().func, line);
        self.state.set(IN_CS | IN_OVERHEAD);
        // Histogram bookkeeping: plain reads of the virtual cycle counter
        // and a thread-local attempt count — no simulated instructions, no
        // shared-cacheline writes, and `hists.record` is one branch when
        // the table is detached.
        let started = cpu.cycles();
        let mut attempts = 0u32;
        let mut fb_dwell = None;

        // Per-site plan: under the adaptive backend the retry budget (and
        // whether to speculate at all) comes from this site's own abort
        // history; static backends keep the library-wide budget.
        let plan = if self.sites.is_adaptive() {
            self.sites.plan(site)
        } else {
            SitePlan {
                max_retries: self.lib.max_retries,
                attempt_htm: true,
            }
        };
        if !plan.attempt_htm {
            // The site's evidence says every attempt dies on a
            // non-transient abort: skip the doomed speculation and its
            // wasted abort cycles, go straight to the fallback path.
            if let Some(iv) = self.lib.cm.on_begin(cpu, line, &mut self.cm_tx) {
                self.cm_stats.note(site, CmEvent::from(iv));
            }
            let fb_start = cpu.cycles();
            let v = self.run_fallback(cpu, line, lock, site, &mut body);
            let done = cpu.cycles();
            self.hists.record(
                site,
                done - started,
                self.fb_attempts,
                Some(done - fb_start),
            );
            self.lib.cm.on_commit(&mut self.cm_tx);
            self.state.set(0);
            return v;
        }

        let mut retries = 0u32;
        let value = loop {
            // Contention-management begin hook, consulted before *every*
            // attempt: a transaction outranked on the karma board spends a
            // bounded politeness window here instead of racing a starving
            // peer's validation — mid-section, a struggling hammer parks
            // as soon as the victim's bid goes up. Costs zero simulated
            // cycles when the manager does not intervene (the
            // single-thread parity contract).
            if let Some(iv) = self.lib.cm.on_begin(cpu, line, &mut self.cm_tx) {
                self.cm_stats.note(site, CmEvent::from(iv));
            }

            // Fast path: wait (outside the transaction) for the lock to be
            // free, then speculate.
            self.wait_lock_free(cpu, line, lock);

            self.state.set(IN_CS | IN_OVERHEAD);
            attempts += 1;
            let attempt = self.attempt_htm(cpu, line, lock, &mut body);
            match attempt {
                Ok(v) => {
                    self.state.set(IN_CS | IN_OVERHEAD);
                    // TM_END cleanup runs in (and returns through) the
                    // runtime library; its branches delimit this
                    // transaction's LBR records from the next one's.
                    cpu.call(line, self.lib.f_tm_end).expect("outside tx");
                    cpu.ret().expect("outside tx");
                    self.truth.commit(site);
                    self.sites.note_commit(site);
                    break v;
                }
                Err(_) => {
                    self.state.set(IN_CS | IN_OVERHEAD);
                    let info = cpu.last_abort().expect("abort must record status");
                    self.record_abort(site, info);
                    // Priority accounting: the rolled-back cycles are work
                    // done, and a karma-style manager turns them into rank.
                    self.lib
                        .cm
                        .on_htm_abort(&mut self.cm_tx, info.weight, attempts);

                    let lock_held_elision = info.class == AbortClass::Explicit
                        && info.explicit_code == XABORT_LOCK_HELD;
                    if lock_held_elision {
                        // Not a data pathology: loop back to waiting without
                        // burning retry budget (standard elision practice).
                        continue;
                    }
                    if info.retry_hint && retries < plan.max_retries {
                        retries += 1;
                        obs::count(Counter::RtmRetries);
                        continue;
                    }
                    // Persistent abort (capacity/sync/explicit) or budget
                    // exhausted: take the slow path.
                    let fb_start = cpu.cycles();
                    let v = self.run_fallback(cpu, line, lock, site, &mut body);
                    fb_dwell = Some(cpu.cycles() - fb_start);
                    break v;
                }
            }
        };
        // Retry depth at completion: HTM attempts (including lock-held
        // elision waits) plus the fallback's software attempts when it ran
        // (one for the serial backends; the STM reports its commit
        // attempts, so software starvation shows in the same histogram).
        self.hists.record(
            site,
            cpu.cycles() - started,
            attempts
                + if fb_dwell.is_some() {
                    self.fb_attempts
                } else {
                    0
                },
            fb_dwell,
        );

        // Completion hook: reset karma, withdraw any published bid.
        self.lib.cm.on_commit(&mut self.cm_tx);
        self.state.set(0);
        value
    }

    /// Execute `body` under the global lock *without* attempting HTM —
    /// models a conventional (non-elided) lock acquisition, like the AVL
    /// tree's pthread read lock in §7.3/Table 2. Holding the lock aborts
    /// every concurrently speculating peer (the elision read subscribes
    /// them to the lock word), so this serializes the world.
    ///
    /// Always takes the exclusive (lock-style) path regardless of the
    /// configured fallback backend: this models a conventional pthread
    /// lock acquisition, not a fallback policy decision.
    pub fn locked_section<T>(
        &mut self,
        cpu: &mut SimCpu,
        line: u32,
        mut body: impl FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        let lock = self.lib.lock_addr;
        let site = Ip::new(cpu.cur_ip().func, line);
        self.state.set(IN_CS | IN_OVERHEAD);
        obs::count(Counter::RtmFallbacks);
        let _span = obs::span(Subsystem::Runtime, "fallback");
        let v = backend::exclusive_section(self, cpu, line, lock, site, &mut body);
        self.state.set(0);
        v
    }

    /// Spin outside the transaction until the global lock reads free.
    fn wait_lock_free(&mut self, cpu: &mut SimCpu, line: u32, lock: Addr) {
        self.state.set(IN_CS | IN_LOCK_WAITING);
        obs::count(Counter::RtmLockWaits);
        loop {
            let v = cpu.load(line, lock).expect("plain load cannot abort");
            if v == 0 {
                return;
            }
            cpu.spin(line).expect("spin outside tx cannot abort");
        }
    }

    /// One hardware-transaction attempt: `xbegin`, the elision read of the
    /// lock word, the user body, `xend`.
    fn attempt_htm<T>(
        &mut self,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        body: &mut impl FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> TxResult<T> {
        obs::count(Counter::RtmHtmAttempts);
        cpu.xbegin(line)?;
        self.state.set(IN_CS | IN_HTM);
        // Lock elision: the transactional read subscribes the lock word to
        // the read set; a fallback acquirer's store will abort us.
        if cpu.load(line, lock)? != 0 {
            cpu.xabort(line, XABORT_LOCK_HELD)?;
        }
        let v = body(cpu)?;
        cpu.xend(line)?;
        Ok(v)
    }

    /// The single abort-recording path: exact truth plus (when adaptive)
    /// the per-site EWMAs. Thread-private on both sides — no allocation
    /// beyond truth's own map, no shared cache line is written.
    pub(crate) fn record_abort(&mut self, site: Ip, info: AbortInfo) {
        self.truth.abort(site, info);
        self.sites.note_abort(site, info.class);
    }

    /// The slow path: complete the execution via the configured fallback
    /// backend (serial lock, TL2 software transaction, or elided lock).
    fn run_fallback<T>(
        &mut self,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        site: Ip,
        body: &mut impl FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        obs::count(Counter::RtmFallbacks);
        let _span = obs::span(Subsystem::Runtime, "fallback");
        // Serial backends complete in one software attempt; the STM
        // overwrites this with its actual commit-attempt count.
        self.fb_attempts = 1;
        let lib = Arc::clone(&self.lib);
        lib.backend.execute(self, cpu, line, lock, site, body)
    }
}

/// Run `body` as a critical section inside the simulated function `func` —
/// sugar used throughout the benchmark suite so transaction sites get
/// meaningful names in profiles.
pub fn named_critical_section<T>(
    tm: &mut TmThread,
    cpu: &mut SimCpu,
    func: FuncId,
    line: u32,
    body: impl FnMut(&mut SimCpu) -> TxResult<T>,
) -> T {
    cpu.call(line, func).expect("call outside tx cannot abort");
    let v = tm.critical_section(cpu, line, body);
    cpu.ret().expect("ret outside tx cannot abort");
    v
}
