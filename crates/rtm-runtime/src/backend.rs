//! Pluggable fallback backends.
//!
//! When a critical section exhausts its hardware retry budget the runtime
//! takes a *fallback path*. Historically that path was hard-wired: acquire
//! the global lock, run serially. This module turns the policy into a
//! [`FallbackBackend`] trait with three implementations:
//!
//! * [`GlobalLock`] — the classic single-global-lock fallback (default).
//!   Serializes all fallback executions and, via elision subscription,
//!   aborts every concurrent hardware transaction.
//! * [`Tl2Stm`] — run the fallback as a TL2-style *software* transaction
//!   ([`txstm`]). Independent fallback sections commit concurrently;
//!   commit-time read-set validation failures surface as a new
//!   [`AbortClass::Validation`] abort cause. Repeated validation failures
//!   or irrevocable actions (a syscall in the body) escalate to serial
//!   execution under the exclusive gate.
//! * [`SingleGlobalLockElided`] — HLE-style: one more *elided* acquisition
//!   of the global lock (transactional attempt subscribed to the lock
//!   word), then a real acquisition. Mirrors [`crate::hle`], but on the
//!   runtime's global lock.
//!
//! ## The shared lock word
//!
//! All backends arbitrate through the `TmLib`'s single global lock word so
//! that hardware elision ("lock free?" means "word == 0") keeps working
//! unmodified: `0` is free, [`GATE_EXCLUSIVE`] marks an exclusive holder
//! (serial fallback, [`crate::TmThread::locked_section`], irrevocable STM),
//! and the low bits count active software transactions. Any non-zero value
//! makes hardware attempts wait and dooms subscribed speculators, so
//! hardware and software transactions never overlap — the STM only has to
//! arbitrate software peers, which is exactly what TL2 does.

use std::sync::Arc;

use obs::Counter;
use txsim_htm::{AbortInfo, Addr, Ip, SimCpu, TxResult, XABORT_LOCK_HELD};
use txsim_pmu::AbortClass;
use txstm::cm::{make_cm, CmDecision, CmKind, ContentionManager};
use txstm::{CommitFail, Tl2};

pub use txstm::GATE_EXCLUSIVE;

use crate::cm_stats::CmEvent;
use crate::state::{IN_CS, IN_FALLBACK, IN_HTM, IN_LOCK_WAITING, IN_OVERHEAD, IN_STM};
use crate::TmThread;

/// Which fallback backend a [`crate::TmLib`] uses — the name that appears
/// on the CLI (`--fallback=`), in store metadata, and in diff provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FallbackKind {
    /// Serialize under the global lock (the paper's runtime; default).
    #[default]
    Lock,
    /// Run fallbacks as TL2 software transactions.
    Stm,
    /// One elided (HLE-style) global-lock acquisition, then a real one.
    Hle,
    /// Pick lock/STM/HLE (and a retry budget) *per site* from live abort
    /// statistics — the profiler's decision tree acted on at runtime.
    Adaptive,
}

impl FallbackKind {
    /// Every valid kind, in CLI presentation order.
    pub const ALL: [FallbackKind; 4] = [
        FallbackKind::Lock,
        FallbackKind::Stm,
        FallbackKind::Hle,
        FallbackKind::Adaptive,
    ];

    /// The canonical lowercase name (CLI value, store meta value).
    pub fn label(self) -> &'static str {
        match self {
            FallbackKind::Lock => "lock",
            FallbackKind::Stm => "stm",
            FallbackKind::Hle => "hle",
            FallbackKind::Adaptive => "adaptive",
        }
    }

    /// Parse a CLI/meta name. Returns `None` for unknown values — callers
    /// must reject, not default (silent defaulting hides typos).
    pub fn parse(s: &str) -> Option<FallbackKind> {
        FallbackKind::ALL.iter().copied().find(|k| k.label() == s)
    }
}

impl std::fmt::Display for FallbackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fallback execution policy: how to complete a critical section once the
/// hardware path has given up. Implementations must leave the global lock
/// word at 0, record exactly one [`crate::Truth::fallback`] for the
/// completion, and run `body` to completion (fallbacks cannot fail).
pub trait FallbackBackend {
    /// This backend's CLI-facing kind.
    fn kind(&self) -> FallbackKind;

    /// Complete one critical-section execution on the fallback path.
    fn execute<T>(
        &self,
        tm: &mut TmThread,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        site: Ip,
        body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T;
}

/// The dispatchable set of backends. `FallbackBackend::execute` is generic
/// (not object-safe), so [`crate::TmLib`] holds this enum and matches.
pub enum Backend {
    /// See [`GlobalLock`].
    Lock(GlobalLock),
    /// See [`Tl2Stm`].
    Stm(Tl2Stm),
    /// See [`SingleGlobalLockElided`].
    Hle(SingleGlobalLockElided),
    /// See [`AdaptiveBackend`].
    Adaptive(AdaptiveBackend),
}

impl Backend {
    /// The backend's kind.
    pub fn kind(&self) -> FallbackKind {
        match self {
            Backend::Lock(b) => b.kind(),
            Backend::Stm(b) => b.kind(),
            Backend::Hle(b) => b.kind(),
            Backend::Adaptive(b) => b.kind(),
        }
    }

    pub(crate) fn execute<T>(
        &self,
        tm: &mut TmThread,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        site: Ip,
        body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        match self {
            Backend::Lock(b) => b.execute(tm, cpu, line, lock, site, body),
            Backend::Stm(b) => b.execute(tm, cpu, line, lock, site, body),
            Backend::Hle(b) => b.execute(tm, cpu, line, lock, site, body),
            Backend::Adaptive(b) => b.execute(tm, cpu, line, lock, site, body),
        }
    }
}

/// Acquire the global lock exclusively, run `body` plainly, release. The
/// common serial tail every backend eventually reaches; also the whole of
/// [`GlobalLock`] and the body of [`crate::TmThread::locked_section`].
pub(crate) fn exclusive_section<T>(
    tm: &mut TmThread,
    cpu: &mut SimCpu,
    line: u32,
    lock: Addr,
    site: Ip,
    body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
) -> T {
    tm.state.set(IN_CS | IN_LOCK_WAITING);
    loop {
        // The snooping CAS dooms every speculator subscribed to the word.
        match cpu
            .cas(line, lock, 0, GATE_EXCLUSIVE)
            .expect("plain CAS cannot abort")
        {
            Ok(_) => break,
            Err(_) => cpu.spin(line).expect("spin outside tx cannot abort"),
        }
    }
    tm.state.set(IN_CS | IN_FALLBACK);
    let v = body(cpu).expect("fallback instructions cannot abort");
    tm.state.set(IN_CS | IN_OVERHEAD);
    cpu.store_forced(line, lock, 0)
        .expect("plain store cannot abort");
    tm.truth.fallback(site);
    v
}

/// The classic fallback: serialize under the global lock.
#[derive(Debug, Default, Clone, Copy)]
pub struct GlobalLock;

impl FallbackBackend for GlobalLock {
    fn kind(&self) -> FallbackKind {
        FallbackKind::Lock
    }

    fn execute<T>(
        &self,
        tm: &mut TmThread,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        site: Ip,
        body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        exclusive_section(tm, cpu, line, lock, site, body)
    }
}

/// HLE-style fallback: one elided acquisition of the global lock (a
/// hardware transaction subscribed to the word), then a real acquisition.
/// Useful when the retry budget was exhausted by transient conflicts — the
/// extra attempt often commits without serializing anyone.
#[derive(Debug, Default, Clone, Copy)]
pub struct SingleGlobalLockElided;

impl FallbackBackend for SingleGlobalLockElided {
    fn kind(&self) -> FallbackKind {
        FallbackKind::Hle
    }

    fn execute<T>(
        &self,
        tm: &mut TmThread,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        site: Ip,
        body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        // Elided attempt, exactly like `hle_section` but on the global
        // lock word.
        let attempt: TxResult<T> = (|| {
            cpu.xbegin(line)?;
            tm.state.set(IN_CS | IN_HTM);
            if cpu.load(line, lock)? != 0 {
                cpu.xabort(line, XABORT_LOCK_HELD)?;
            }
            let v = body(cpu)?;
            cpu.xend(line)?;
            Ok(v)
        })();
        match attempt {
            Ok(v) => {
                tm.state.set(IN_CS | IN_OVERHEAD);
                // Still a fallback-path completion for the checksum
                // invariant, even though it committed speculatively.
                tm.truth.fallback(site);
                tm.truth.hle_commit(site);
                v
            }
            Err(_) => {
                tm.state.set(IN_CS | IN_OVERHEAD);
                let info = cpu.last_abort().expect("abort must record status");
                tm.record_abort(site, info);
                exclusive_section(tm, cpu, line, lock, site, body)
            }
        }
    }
}

/// TL2 software-transaction fallback: fallbacks speculate in software and
/// commit via versioned write-locks, so independent sections proceed
/// concurrently instead of convoying on the global lock.
pub struct Tl2Stm {
    tl2: Tl2,
    /// The contention manager consulted after every failed commit (and at
    /// every software-transaction begin). See [`txstm::cm`].
    cm: Arc<dyn ContentionManager>,
}

impl Tl2Stm {
    /// Wrap a TL2 engine (gated on the runtime's global lock word) with
    /// the default [`CmKind::Backoff`] contention manager.
    pub fn new(tl2: Tl2) -> Tl2Stm {
        Tl2Stm::with_cm(tl2, make_cm(CmKind::Backoff))
    }

    /// Same, with an explicit contention manager.
    pub fn with_cm(tl2: Tl2, cm: Arc<dyn ContentionManager>) -> Tl2Stm {
        Tl2Stm { tl2, cm }
    }

    /// The underlying engine (tests and diagnostics).
    pub fn engine(&self) -> &Tl2 {
        &self.tl2
    }
}

impl FallbackBackend for Tl2Stm {
    fn kind(&self) -> FallbackKind {
        FallbackKind::Stm
    }

    fn execute<T>(
        &self,
        tm: &mut TmThread,
        cpu: &mut SimCpu,
        line: u32,
        _lock: Addr,
        site: Ip,
        body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        // The gate *is* the global lock word (`Tl2` holds its address).
        let tl2 = &self.tl2;
        tm.state.set(IN_CS | IN_LOCK_WAITING);
        tl2.gate_enter(cpu, line);

        let mut attempt = 0u32;
        loop {
            // Consult the contention manager before (re)opening the read
            // window: an outranked transaction spends its politeness window
            // here instead of racing a starving peer's validation.
            if let Some(iv) = self.cm.on_begin(cpu, line, &mut tm.cm_tx) {
                tm.cm_stats.note(site, CmEvent::from(iv));
            }
            let rv = tl2.begin(cpu, line);
            tm.state.set(IN_CS | IN_FALLBACK | IN_STM);
            match body(cpu) {
                Ok(v) => match tl2.commit(cpu, line, rv) {
                    Ok(()) => {
                        tm.state.set(IN_CS | IN_OVERHEAD | IN_STM);
                        cpu.stm_report_commit(line);
                        tm.truth.fallback(site);
                        tm.truth.stm_commit(site);
                        tm.fb_attempts = attempt + 1;
                        tl2.gate_exit(cpu, line);
                        return v;
                    }
                    Err(abort) => {
                        tm.state.set(IN_CS | IN_OVERHEAD | IN_STM);
                        cpu.stm_report_abort(abort.ip, abort.weight);
                        tm.record_abort(
                            site,
                            AbortInfo::new(AbortClass::Validation, 0, abort.weight),
                        );
                        attempt += 1;
                        // The contention manager decides the reaction; the
                        // engine's `max_attempts` stays the escape hatch
                        // every policy must respect (the progress bound).
                        let max = tl2.config().max_attempts;
                        let res = match abort.cause {
                            CommitFail::LockBusy => {
                                self.cm
                                    .on_lock_conflict(&mut tm.cm_tx, abort.work, attempt, max)
                            }
                            CommitFail::Validation => self.cm.on_validation_failure(
                                &mut tm.cm_tx,
                                abort.work,
                                attempt,
                                max,
                            ),
                        };
                        if res.priority_abort {
                            tm.cm_stats.note(site, CmEvent::PriorityAbort);
                        }
                        match res.decision {
                            CmDecision::Backoff => tl2.backoff(cpu, line, attempt),
                            CmDecision::Stall { spins } => {
                                tm.cm_stats.note(site, CmEvent::Stall);
                                for _ in 0..spins {
                                    cpu.spin(line).expect("spin outside tx cannot abort");
                                }
                            }
                            CmDecision::Escalate => {
                                // Forced commit: give up on optimism and
                                // take the exclusive gate below.
                                tm.cm_stats.note(site, CmEvent::Escalation);
                                break;
                            }
                        }
                    }
                },
                Err(_) => {
                    // Only irrevocable actions (syscall/page fault) abort a
                    // software transaction; roll back and run serially. The
                    // hardware attempts already recorded the sync abort, so
                    // truth is not double-charged here.
                    cpu.stm_cancel();
                    break;
                }
            }
        }

        // Irrevocable escalation. Drop our own gate share *first*: two
        // escalating threads that both kept their shares would each wait
        // forever for the other's to drain.
        tm.fb_attempts = attempt + 1;
        tl2.gate_exit(cpu, line);
        tm.state.set(IN_CS | IN_LOCK_WAITING);
        obs::count(Counter::RtmLockWaits);
        tl2.gate_lock_exclusive(cpu, line);
        tm.state.set(IN_CS | IN_FALLBACK);
        let v = body(cpu).expect("fallback instructions cannot abort");
        tm.state.set(IN_CS | IN_OVERHEAD);
        tl2.gate_unlock_exclusive(cpu, line);
        tm.truth.fallback(site);
        v
    }
}

/// Per-site dispatch driven by the profiler's own evidence: each site's
/// abort-class / validation / fallback-rate EWMAs (kept thread-privately in
/// [`crate::SiteTable`]) select which of the three concrete backends
/// completes that site's fallbacks, with hysteresis so sites don't flap.
/// The policy mapping is [`crate::AdaptivePolicy::classify`] — the same
/// function the decision tree's `SwitchBackend` suggestion evaluates, so
/// report advice and runtime behavior agree by construction.
pub struct AdaptiveBackend {
    lock: GlobalLock,
    stm: Tl2Stm,
    hle: SingleGlobalLockElided,
}

impl AdaptiveBackend {
    /// Build the adaptive dispatcher over a TL2 engine (gated on the
    /// runtime's global lock word, exactly like the static STM backend),
    /// with the default [`CmKind::Backoff`] contention manager.
    pub fn new(tl2: Tl2) -> AdaptiveBackend {
        AdaptiveBackend::with_cm(tl2, make_cm(CmKind::Backoff))
    }

    /// Same, with an explicit contention manager for the STM flavor.
    pub fn with_cm(tl2: Tl2, cm: Arc<dyn ContentionManager>) -> AdaptiveBackend {
        AdaptiveBackend {
            lock: GlobalLock,
            stm: Tl2Stm::with_cm(tl2, cm),
            hle: SingleGlobalLockElided,
        }
    }

    /// The underlying TL2 engine (tests and diagnostics).
    pub fn engine(&self) -> &Tl2 {
        self.stm.engine()
    }
}

impl FallbackBackend for AdaptiveBackend {
    fn kind(&self) -> FallbackKind {
        FallbackKind::Adaptive
    }

    fn execute<T>(
        &self,
        tm: &mut TmThread,
        cpu: &mut SimCpu,
        line: u32,
        lock: Addr,
        site: Ip,
        body: &mut dyn FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        let (flavor, switched) = tm.sites.choose(site);
        if switched {
            obs::count(Counter::RtmBackendSwitches);
            tm.truth.backend_switch(site);
        }
        let v = match flavor {
            FallbackKind::Lock => self.lock.execute(tm, cpu, line, lock, site, body),
            FallbackKind::Stm => self.stm.execute(tm, cpu, line, lock, site, body),
            FallbackKind::Hle => self.hle.execute(tm, cpu, line, lock, site, body),
            FallbackKind::Adaptive => unreachable!("per-site choice is always concrete"),
        };
        tm.sites.note_fallback(site, flavor);
        v
    }
}
