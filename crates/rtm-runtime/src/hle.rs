//! Hardware Lock Elision (HLE) support.
//!
//! The paper focuses on RTM but notes (§2) that "all the techniques can be
//! applied to HLE with trivial extension". HLE retrofits elision onto
//! existing *fine-grained* lock-based code: `hle_acquire` starts a
//! transaction instead of writing the lock word (adding it to the read
//! set); `hle_release` commits. On an abort the hardware re-executes the
//! acquire non-transactionally — actually taking the lock — so the
//! critical section always completes, with no software retry policy.
//!
//! This module provides [`HleLock`] (a lock word in simulated memory, one
//! per protected structure, unlike RTM's single global fallback lock) and
//! [`hle_section`], which maintains the same profiler-facing state word as
//! the RTM path so TxSampler's analyses apply unchanged.

use std::sync::Arc;

use txsim_htm::{Addr, HtmDomain, Ip, SimCpu, TxResult, XABORT_LOCK_HELD};

use crate::state::{IN_CS, IN_FALLBACK, IN_HTM, IN_LOCK_WAITING, IN_OVERHEAD};
use crate::TmThread;

/// One elidable lock. HLE programs typically have many (per bucket, per
/// node…), which is exactly what distinguishes them from the RTM runtime's
/// single global fallback lock.
#[derive(Debug, Clone, Copy)]
pub struct HleLock {
    addr: Addr,
}

impl HleLock {
    /// Allocate a lock word on its own cache line.
    pub fn new(domain: &Arc<HtmDomain>) -> Self {
        HleLock {
            addr: domain.heap.alloc_padded(8, domain.geometry.line_bytes),
        }
    }

    /// The lock word's simulated address.
    pub fn addr(&self) -> Addr {
        self.addr
    }
}

impl TmThread {
    /// Execute `body` under `lock` with hardware lock elision.
    ///
    /// Semantics follow Intel HLE: one transactional attempt (the elided
    /// acquire reads the lock word into the read set; a real writer aborts
    /// us); any abort falls back to *actually acquiring* the lock — there
    /// is no retry loop, matching `XACQUIRE`/`XRELEASE` behaviour.
    pub fn hle_section<T>(
        &mut self,
        cpu: &mut SimCpu,
        lock: &HleLock,
        line: u32,
        mut body: impl FnMut(&mut SimCpu) -> TxResult<T>,
    ) -> T {
        let site = Ip::new(cpu.cur_ip().func, line);
        self.state.set(IN_CS | IN_OVERHEAD);

        // Elided attempt.
        let attempt: TxResult<T> = (|| {
            cpu.xbegin(line)?;
            self.state.set(IN_CS | IN_HTM);
            // The elided XACQUIRE: read the lock word; if someone truly
            // holds it, we cannot elide.
            if cpu.load(line, lock.addr)? != 0 {
                cpu.xabort(line, XABORT_LOCK_HELD)?;
            }
            let v = body(cpu)?;
            cpu.xend(line)?; // the elided XRELEASE
            Ok(v)
        })();

        let value = match attempt {
            Ok(v) => {
                self.truth.commit(site);
                v
            }
            Err(_) => {
                let info = cpu.last_abort().expect("abort recorded");
                self.truth.abort(site, info);
                // Non-elided re-execution: really take the lock.
                self.state.set(IN_CS | IN_LOCK_WAITING);
                loop {
                    match cpu.cas(line, lock.addr, 0, 1).expect("plain CAS") {
                        Ok(_) => break,
                        Err(_) => cpu.spin(line).expect("plain spin"),
                    }
                }
                self.state.set(IN_CS | IN_FALLBACK);
                let v = body(cpu).expect("non-transactional body cannot abort");
                self.state.set(IN_CS | IN_OVERHEAD);
                cpu.store_forced(line, lock.addr, 0).expect("plain store");
                self.truth.fallback(site);
                v
            }
        };
        self.state.set(0);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TmLib;
    use txsim_htm::{DomainConfig, SamplingConfig};

    #[test]
    fn hle_commits_when_uncontended() {
        let d = HtmDomain::new(DomainConfig::default().with_memory(1 << 20));
        let lib = TmLib::new(&d);
        let lock = HleLock::new(&d);
        let counter = d.heap.alloc_words(1);
        let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
        let mut tm = lib.thread();
        for _ in 0..50 {
            tm.hle_section(&mut cpu, &lock, 10, |cpu| {
                cpu.rmw(11, counter, |v| v + 1).map(|_| ())
            });
        }
        assert_eq!(d.mem.load(counter), 50);
        assert_eq!(tm.truth.totals().htm_commits, 50);
        assert_eq!(tm.truth.totals().fallbacks, 0);
        assert_eq!(d.mem.load(lock.addr()), 0, "lock never actually taken");
    }

    #[test]
    fn hle_abort_takes_the_lock_without_retrying() {
        let d = HtmDomain::new(DomainConfig::default().with_memory(1 << 20));
        let lib = TmLib::new(&d);
        let lock = HleLock::new(&d);
        let out = d.heap.alloc_words(1);
        let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
        let mut tm = lib.thread();
        tm.hle_section(&mut cpu, &lock, 10, |cpu| {
            cpu.syscall(11)?; // aborts the elided attempt
            cpu.store(12, out, 9)
        });
        assert_eq!(d.mem.load(out), 9);
        let t = tm.truth.totals();
        assert_eq!(t.aborts_sync, 1, "exactly one attempt before the lock");
        assert_eq!(t.fallbacks, 1);
        assert_eq!(d.mem.load(lock.addr()), 0, "lock released after");
    }

    #[test]
    fn held_lock_defeats_elision() {
        let d = HtmDomain::new(DomainConfig::default().with_memory(1 << 20));
        let lib = TmLib::new(&d);
        let lock = HleLock::new(&d);
        let out = d.heap.alloc_words(1);
        let mut holder = d.spawn_cpu(SamplingConfig::disabled());
        assert_eq!(holder.cas(1, lock.addr(), 0, 1).unwrap(), Ok(0));

        // Another thread's section must wait for the real lock.
        let d2 = Arc::clone(&d);
        let lib2 = Arc::clone(&lib);
        let worker = std::thread::spawn(move || {
            let mut cpu = d2.spawn_cpu(SamplingConfig::disabled());
            let mut tm = lib2.thread();
            tm.hle_section(&mut cpu, &lock, 10, |cpu| cpu.store(11, out, 5));
            tm.truth
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(d.mem.load(out), 0, "section must not run while held");
        holder.store_forced(2, lock.addr(), 0).unwrap();
        let truth = worker.join().unwrap();
        assert_eq!(d.mem.load(out), 5);
        // The elided attempt saw the lock held (explicit abort) and fell
        // back to a real acquisition.
        assert_eq!(truth.totals().aborts_explicit, 1);
        assert_eq!(truth.totals().fallbacks, 1);
    }

    #[test]
    fn distinct_hle_locks_do_not_interfere() {
        // Fine-grained locking: two structures, two locks — transactions on
        // different locks only conflict through data, not through a global
        // lock (the RTM runtime's serialization bottleneck).
        let d = HtmDomain::new(DomainConfig::default().with_memory(1 << 20).cooperative());
        let lib = TmLib::new(&d);
        let lock_a = HleLock::new(&d);
        let lock_b = HleLock::new(&d);
        let a = d.heap.alloc_padded(8, 64);
        let b = d.heap.alloc_padded(8, 64);

        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for (lock, addr) in [(lock_a, a), (lock_b, b)] {
                let d = Arc::clone(&d);
                let lib = Arc::clone(&lib);
                let barrier = &barrier;
                s.spawn(move || {
                    let mut cpu = d.spawn_cpu(SamplingConfig::disabled());
                    let mut tm = lib.thread();
                    barrier.wait();
                    for _ in 0..2_000 {
                        tm.hle_section(&mut cpu, &lock, 10, |cpu| {
                            cpu.rmw(11, addr, |v| v + 1).map(|_| ())
                        });
                    }
                    assert_eq!(
                        tm.truth.totals().aborts_conflict,
                        0,
                        "disjoint locks + disjoint data must not conflict"
                    );
                });
            }
        });
        assert_eq!(d.mem.load(a), 2_000);
        assert_eq!(d.mem.load(b), 2_000);
    }
}
