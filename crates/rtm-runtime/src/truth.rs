//! Ground-truth instrumentation.
//!
//! The RTM runtime sees every transaction attempt exactly, so it can keep
//! precise per-site counters almost for free. The paper uses exactly this
//! ("we obtain the ground truth from the instrumentation in the HTM runtime
//! library", §7.2) to validate TxSampler's sampled estimates — and so do our
//! integration tests. The profiler itself never reads these.

use std::collections::HashMap;

use txsim_htm::{AbortClass, AbortInfo, Ip};

/// Exact counters for one critical-section site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteTruth {
    /// Successful HTM-path executions.
    pub htm_commits: u64,
    /// Executions that ended up on the fallback path.
    pub fallbacks: u64,
    /// Fallback executions that committed as *software* transactions
    /// (subset of `fallbacks`; the rest ran serially under the lock).
    pub stm_commits: u64,
    /// Fallback executions that committed via the *elided* lock (HLE
    /// flavor; subset of `fallbacks`, disjoint from `stm_commits`).
    pub hle_commits: u64,
    /// Times the adaptive policy switched this site's fallback backend.
    pub backend_switches: u64,
    /// Conflict aborts.
    pub aborts_conflict: u64,
    /// Capacity aborts.
    pub aborts_capacity: u64,
    /// Synchronous aborts.
    pub aborts_sync: u64,
    /// Explicit aborts (including lock-held elision aborts).
    pub aborts_explicit: u64,
    /// Profiler-interrupt-induced aborts.
    pub aborts_interrupt: u64,
    /// Software-transaction commit-time validation failures (STM backend).
    pub aborts_validation: u64,
    /// Total cycles wasted in aborted attempts.
    pub abort_weight: u64,
}

impl SiteTruth {
    /// Total aborts of all classes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_conflict
            + self.aborts_capacity
            + self.aborts_sync
            + self.aborts_explicit
            + self.aborts_interrupt
            + self.aborts_validation
    }

    /// Aborts attributable to the application (excludes profiler-induced
    /// interrupt aborts and lock-held elision aborts, which are
    /// serialization rather than data pathology).
    pub fn app_aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_capacity + self.aborts_sync
    }

    /// The abort/commit ratio r_a/c used to categorize programs (Figure 8).
    pub fn abort_commit_ratio(&self) -> f64 {
        if self.htm_commits == 0 {
            if self.total_aborts() == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.total_aborts() as f64 / self.htm_commits as f64
        }
    }

    fn record_abort(&mut self, info: AbortInfo) {
        match info.class {
            AbortClass::Conflict => self.aborts_conflict += 1,
            AbortClass::Capacity => self.aborts_capacity += 1,
            AbortClass::Sync => self.aborts_sync += 1,
            AbortClass::Explicit => self.aborts_explicit += 1,
            AbortClass::Validation => self.aborts_validation += 1,
            AbortClass::Interrupt => self.aborts_interrupt += 1,
        }
        self.abort_weight += info.weight;
    }

    /// Fallback executions that ran serially under the lock (neither
    /// software-speculative nor elided).
    pub fn lock_fallbacks(&self) -> u64 {
        self.fallbacks
            .saturating_sub(self.stm_commits)
            .saturating_sub(self.hle_commits)
    }

    /// Merge another site's counters into this one.
    pub fn merge(&mut self, other: &SiteTruth) {
        self.htm_commits += other.htm_commits;
        self.fallbacks += other.fallbacks;
        self.stm_commits += other.stm_commits;
        self.hle_commits += other.hle_commits;
        self.backend_switches += other.backend_switches;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_capacity += other.aborts_capacity;
        self.aborts_sync += other.aborts_sync;
        self.aborts_explicit += other.aborts_explicit;
        self.aborts_interrupt += other.aborts_interrupt;
        self.aborts_validation += other.aborts_validation;
        self.abort_weight += other.abort_weight;
    }
}

/// Per-thread ground truth: exact counters per critical-section site.
#[derive(Debug, Clone, Default)]
pub struct Truth {
    sites: HashMap<Ip, SiteTruth>,
}

impl Truth {
    /// Record a committed HTM execution of `site`.
    pub fn commit(&mut self, site: Ip) {
        self.sites.entry(site).or_default().htm_commits += 1;
    }

    /// Record a fallback execution of `site`.
    pub fn fallback(&mut self, site: Ip) {
        self.sites.entry(site).or_default().fallbacks += 1;
    }

    /// Record that a fallback execution of `site` committed as a software
    /// transaction. Call *in addition to* [`Truth::fallback`]: `fallbacks`
    /// keeps counting every slow-path completion (so `htm_commits +
    /// fallbacks` remains the execution count) and this marks the
    /// speculative subset.
    pub fn stm_commit(&mut self, site: Ip) {
        self.sites.entry(site).or_default().stm_commits += 1;
    }

    /// Record that a fallback execution of `site` committed via the elided
    /// lock (HLE flavor). Same additivity contract as [`Truth::stm_commit`].
    pub fn hle_commit(&mut self, site: Ip) {
        self.sites.entry(site).or_default().hle_commits += 1;
    }

    /// Record that the adaptive policy switched `site`'s fallback backend.
    pub fn backend_switch(&mut self, site: Ip) {
        self.sites.entry(site).or_default().backend_switches += 1;
    }

    /// Record an aborted attempt of `site`.
    pub fn abort(&mut self, site: Ip, info: AbortInfo) {
        self.sites.entry(site).or_default().record_abort(info);
    }

    /// Counters for one site.
    pub fn site(&self, site: Ip) -> SiteTruth {
        self.sites.get(&site).copied().unwrap_or_default()
    }

    /// Iterate all sites.
    pub fn iter(&self) -> impl Iterator<Item = (&Ip, &SiteTruth)> {
        self.sites.iter()
    }

    /// Sum over all sites.
    pub fn totals(&self) -> SiteTruth {
        let mut acc = SiteTruth::default();
        for site in self.sites.values() {
            acc.merge(site);
        }
        acc
    }

    /// Merge another thread's truth into this one (used by harnesses to
    /// aggregate across worker threads).
    pub fn merge(&mut self, other: &Truth) {
        for (site, stats) in &other.sites {
            self.sites.entry(*site).or_default().merge(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsim_htm::FuncId;

    fn site(n: u32) -> Ip {
        Ip::new(FuncId(n), 1)
    }

    #[test]
    fn records_and_sums() {
        let mut t = Truth::default();
        t.commit(site(1));
        t.commit(site(1));
        t.fallback(site(1));
        t.abort(site(1), AbortInfo::new(AbortClass::Conflict, 0, 100));
        t.abort(site(1), AbortInfo::new(AbortClass::Capacity, 0, 50));
        let s = t.site(site(1));
        assert_eq!(s.htm_commits, 2);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.aborts_conflict, 1);
        assert_eq!(s.aborts_capacity, 1);
        assert_eq!(s.abort_weight, 150);
        assert_eq!(s.total_aborts(), 2);
        assert_eq!(s.abort_commit_ratio(), 1.0);
    }

    #[test]
    fn app_aborts_excludes_interrupt_and_explicit() {
        let mut t = Truth::default();
        t.abort(site(1), AbortInfo::new(AbortClass::Interrupt, 0, 1));
        t.abort(site(1), AbortInfo::new(AbortClass::Explicit, 0xff, 1));
        t.abort(site(1), AbortInfo::new(AbortClass::Sync, 0, 1));
        assert_eq!(t.site(site(1)).app_aborts(), 1);
        assert_eq!(t.site(site(1)).total_aborts(), 3);
    }

    #[test]
    fn merge_combines_sites() {
        let mut a = Truth::default();
        let mut b = Truth::default();
        a.commit(site(1));
        b.commit(site(1));
        b.commit(site(2));
        a.merge(&b);
        assert_eq!(a.site(site(1)).htm_commits, 2);
        assert_eq!(a.site(site(2)).htm_commits, 1);
        assert_eq!(a.totals().htm_commits, 3);
    }

    #[test]
    fn ratio_edge_cases() {
        let s = SiteTruth::default();
        assert_eq!(s.abort_commit_ratio(), 0.0);
        let mut t = Truth::default();
        t.abort(site(1), AbortInfo::new(AbortClass::Conflict, 0, 1));
        assert!(t.site(site(1)).abort_commit_ratio().is_infinite());
    }
}
