//! Per-site runtime statistics and the adaptive fallback policy.
//!
//! The profiler's decision tree (core's `decision.rs`) can only *print*
//! "this site wants a different fallback"; this module closes the loop by
//! keeping the same per-site evidence inside the runtime and acting on it.
//! Each [`crate::TmThread`] owns one [`SiteTable`]: a fixed-capacity,
//! thread-private table keyed by critical-section site ([`Ip`]) holding
//! abort-class / validation-failure / fallback-rate EWMAs, the site's
//! current backend choice, and its retry budget.
//!
//! Design constraints (and why the table looks the way it does):
//!
//! * **Thread-private.** Only the owning thread ever touches its table, so
//!   updating a site on the abort path writes no shared cache line — the
//!   profiler's zero-perturbation story survives the control loop.
//! * **No allocation after construction.** The table is a fixed array of
//!   slots filled by open addressing; a site that cannot find a free slot
//!   simply runs the unadapted default policy. The abort path therefore
//!   never allocates (unlike a growable map).
//! * **Pay-for-use.** A [`TmLib`](crate::TmLib) configured with a static
//!   backend hands threads a zero-capacity table: every hook degenerates to
//!   one `is_empty` branch.
//!
//! The policy constants live in [`AdaptivePolicy`] and are shared with the
//! decision tree's `SwitchBackend` suggestion, so report advice and runtime
//! behavior provably agree: both sides call [`AdaptivePolicy::classify`]
//! on the same abort-class shares.

use txsim_htm::Ip;
use txsim_pmu::AbortClass;

use crate::backend::FallbackKind;

/// Fixed-point one for the EWMAs (Q10).
const ONE: u32 = 1 << 10;
/// EWMA smoothing shift: alpha = 1/8 per observation.
const SHIFT: u32 = 3;
/// Default slot capacity of a [`SiteTable`] (sites that misbehave; clean
/// sites never occupy a slot).
pub const SITE_CAPACITY: usize = 128;

#[inline]
fn ewma_up(e: &mut u32) {
    *e += (ONE - *e) >> SHIFT;
}

#[inline]
fn ewma_down(e: &mut u32) {
    *e -= *e >> SHIFT;
}

/// The adaptive policy's thresholds. [`AdaptivePolicy::DEFAULT`] is the one
/// the runtime uses *and* the one `decision.rs` consults for its
/// `SwitchBackend` suggestion — keep them one value so the report never
/// advises a switch the runtime would not make.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Share of abort pressure a class must hold to drive the backend
    /// choice (same role as the decision tree's dominant-class cut).
    pub class_dominant: f64,
    /// Validation-failure rate (per section) beyond which the STM backend
    /// is abandoned for the serial lock.
    pub give_up_validation: f64,
    /// Minimum abort-pressure EWMA (fraction of sections aborting) before
    /// any switch: quiet sites keep the default.
    pub min_pressure: f64,
    /// Executions observed at a site before its first switch.
    pub min_execs: u64,
    /// Executions a site must wait between switches (hysteresis — sites
    /// must not flap between backends on every abort).
    pub cooldown: u64,
    /// Fallback-rate EWMA beyond which the doomed hardware attempt is
    /// skipped entirely (straight to the fallback path).
    pub straight_to_fallback: f64,
    /// Every `probe_interval`-th execution of a site that skips hardware
    /// attempts speculates anyway, so a site whose phase changed can
    /// re-learn its way back onto the fast path.
    pub probe_interval: u64,
    /// Retry budget for conflict-dominant sites (transient aborts profit
    /// from extra attempts before serializing).
    pub boosted_retries: u32,
}

impl AdaptivePolicy {
    /// The thresholds shipped with the runtime (and mirrored by the
    /// decision tree).
    pub const DEFAULT: AdaptivePolicy = AdaptivePolicy {
        class_dominant: 0.40,
        give_up_validation: 0.50,
        min_pressure: 0.25,
        min_execs: 8,
        cooldown: 32,
        straight_to_fallback: 0.85,
        probe_interval: 64,
        boosted_retries: 8,
    };

    /// Map per-site abort evidence to the backend that evidence wants, or
    /// `None` when no class dominates (keep whatever runs today).
    ///
    /// Inputs are *shares*: `conflict`/`capacity`/`sync` are each class's
    /// share of the site's hardware-abort pressure, `validation` is the
    /// software-validation failure rate. The mapping:
    ///
    /// * validation failures past [`Self::give_up_validation`] → [`FallbackKind::Lock`]
    ///   (the STM is losing; serialize),
    /// * sync-dominant → [`FallbackKind::Lock`] (irrevocable bodies abort
    ///   every speculative flavor; go straight to serial),
    /// * capacity-dominant → [`FallbackKind::Stm`] (software speculation
    ///   has no footprint limit; independent overflows commit concurrently),
    /// * conflict-dominant → [`FallbackKind::Hle`] (transient; one more
    ///   elided attempt usually commits without serializing anyone).
    pub fn classify(
        &self,
        conflict: f64,
        capacity: f64,
        sync: f64,
        validation: f64,
    ) -> Option<FallbackKind> {
        if validation >= self.give_up_validation {
            return Some(FallbackKind::Lock);
        }
        if sync >= self.class_dominant {
            return Some(FallbackKind::Lock);
        }
        if capacity >= self.class_dominant {
            return Some(FallbackKind::Stm);
        }
        if conflict >= self.class_dominant {
            return Some(FallbackKind::Hle);
        }
        None
    }

    /// The retry budget the policy grants a site running `kind`.
    pub fn budget(&self, kind: FallbackKind, base: u32) -> u32 {
        match kind {
            // Serial backends exist because speculation is futile here:
            // retrying non-transient aborts only burns cycles.
            FallbackKind::Lock | FallbackKind::Stm => 0,
            FallbackKind::Hle => self.boosted_retries.max(base),
            FallbackKind::Adaptive => base,
        }
    }
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy::DEFAULT
    }
}

/// What the runtime should do for one execution of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SitePlan {
    /// Transient-abort retry budget for this execution.
    pub max_retries: u32,
    /// Whether to speculate at all (false → straight to the fallback path).
    pub attempt_htm: bool,
}

/// Point-in-time view of one site's adaptive state, for the harness to fold
/// into profiles and for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSnapshot {
    /// The critical-section site.
    pub site: Ip,
    /// The backend currently chosen for this site.
    pub backend: FallbackKind,
    /// Backend switches performed at this site so far.
    pub switches: u64,
    /// Fallback completions dispatched to the serial lock.
    pub fb_lock: u64,
    /// Fallback completions dispatched to the software TM.
    pub fb_stm: u64,
    /// Fallback completions dispatched to the elided lock.
    pub fb_hle: u64,
}

#[derive(Debug, Clone, Copy)]
struct SiteSlot {
    site: Ip,
    backend: FallbackKind,
    execs: u64,
    switches: u64,
    cooldown: u64,
    // Fallback completions per flavor since the last `take_delta`.
    d_lock: u64,
    d_stm: u64,
    d_hle: u64,
    d_switches: u64,
    // Lifetime totals (snapshots / diagnostics).
    t_lock: u64,
    t_stm: u64,
    t_hle: u64,
    // Q10 EWMAs, one observation per event (abort) or completion (decay).
    ewma_conflict: u32,
    ewma_capacity: u32,
    ewma_sync: u32,
    ewma_validation: u32,
    ewma_fallback: u32,
}

impl SiteSlot {
    fn new(site: Ip) -> SiteSlot {
        SiteSlot {
            site,
            backend: FallbackKind::Lock,
            execs: 0,
            switches: 0,
            cooldown: 0,
            d_lock: 0,
            d_stm: 0,
            d_hle: 0,
            d_switches: 0,
            t_lock: 0,
            t_stm: 0,
            t_hle: 0,
            ewma_conflict: 0,
            ewma_capacity: 0,
            ewma_sync: 0,
            ewma_validation: 0,
            ewma_fallback: 0,
        }
    }

    /// Hardware abort-class shares (conflict, capacity, sync) plus the
    /// validation rate, as the policy's classify inputs.
    fn shares(&self) -> (f64, f64, f64, f64) {
        let total = (self.ewma_conflict + self.ewma_capacity + self.ewma_sync) as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0, self.ewma_validation as f64 / ONE as f64);
        }
        (
            self.ewma_conflict as f64 / total,
            self.ewma_capacity as f64 / total,
            self.ewma_sync as f64 / total,
            self.ewma_validation as f64 / ONE as f64,
        )
    }

    /// Abort pressure: fraction of recent sections that aborted at all.
    fn pressure(&self) -> f64 {
        let peak = self
            .ewma_conflict
            .max(self.ewma_capacity)
            .max(self.ewma_sync)
            .max(self.ewma_validation)
            .max(self.ewma_fallback);
        peak as f64 / ONE as f64
    }
}

/// Thread-private per-site statistics. See the module docs for the
/// zero-allocation / zero-sharing design constraints.
#[derive(Debug)]
pub struct SiteTable {
    slots: Box<[Option<SiteSlot>]>,
    policy: AdaptivePolicy,
    base_retries: u32,
    /// Sites that could not be seated (table full) run unadapted.
    overflow: u64,
}

impl SiteTable {
    /// A table for a thread of an adaptive [`crate::TmLib`].
    pub fn new(policy: AdaptivePolicy, base_retries: u32) -> SiteTable {
        SiteTable {
            slots: vec![None; SITE_CAPACITY].into_boxed_slice(),
            policy,
            base_retries,
            overflow: 0,
        }
    }

    /// The zero-capacity table handed to threads of a *static* library:
    /// every hook returns after one branch and nothing is ever allocated.
    pub fn detached() -> SiteTable {
        SiteTable {
            slots: Box::new([]),
            policy: AdaptivePolicy::DEFAULT,
            base_retries: 0,
            overflow: 0,
        }
    }

    /// Whether this table adapts at all.
    #[inline]
    pub fn is_adaptive(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Slot capacity (fixed for the table's lifetime — the no-allocation
    /// guarantee tests pin).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sites that could not be seated and ran unadapted.
    pub fn overflowed(&self) -> u64 {
        self.overflow
    }

    fn slot_index(&self, site: Ip) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let cap = self.slots.len();
        let hash = (site.func.0 as usize).wrapping_mul(0x9e37_79b9)
            ^ (site.line as usize).wrapping_mul(31);
        for probe in 0..cap {
            let i = (hash + probe) % cap;
            match &self.slots[i] {
                Some(slot) if slot.site == site => return Some(i),
                Some(_) => continue,
                None => return Some(i),
            }
        }
        None
    }

    fn slot_mut(&mut self, site: Ip, insert: bool) -> Option<&mut SiteSlot> {
        let i = self.slot_index(site)?;
        if self.slots[i].is_none() {
            if !insert {
                return None;
            }
            self.slots[i] = Some(SiteSlot::new(site));
        }
        self.slots[i].as_mut()
    }

    /// Section-start hook: the execution plan for `site`. Ticks the site's
    /// execution counter and hysteresis cooldown.
    pub fn plan(&mut self, site: Ip) -> SitePlan {
        let base = self.base_retries;
        let policy = self.policy;
        let Some(slot) = self.slot_mut(site, false) else {
            return SitePlan {
                max_retries: base,
                attempt_htm: true,
            };
        };
        slot.execs += 1;
        slot.cooldown = slot.cooldown.saturating_sub(1);
        let retries = policy.budget(slot.backend, base);
        // Straight-to-fallback: once (almost) every execution ends on the
        // fallback path and the choice is a serial flavor, the hardware
        // attempt is pure waste — skip it, but probe periodically so a
        // phase change can bring the site back.
        let skip = slot.backend != FallbackKind::Hle
            && slot.ewma_fallback as f64 / ONE as f64 >= policy.straight_to_fallback
            && slot.execs % policy.probe_interval != 0;
        SitePlan {
            max_retries: retries,
            attempt_htm: !skip,
        }
    }

    /// Abort-path hook: fold one abort of `class` into the site's EWMAs.
    /// Seats the site on first misbehavior; thereafter pure in-place
    /// arithmetic (no allocation, no shared write).
    pub fn note_abort(&mut self, site: Ip, class: AbortClass) {
        if self.slots.is_empty() {
            return;
        }
        let Some(slot) = self.slot_mut(site, true) else {
            self.overflow += 1;
            return;
        };
        match class {
            AbortClass::Conflict => ewma_up(&mut slot.ewma_conflict),
            AbortClass::Capacity => ewma_up(&mut slot.ewma_capacity),
            AbortClass::Sync => ewma_up(&mut slot.ewma_sync),
            AbortClass::Validation => ewma_up(&mut slot.ewma_validation),
            // Lock-held elision and profiler-interrupt aborts say nothing
            // about what fallback the site wants.
            AbortClass::Explicit | AbortClass::Interrupt => {}
        }
    }

    /// Commit hook (HTM path succeeded): decay every EWMA. Only sites that
    /// previously misbehaved are tracked; a clean site stays slot-free.
    pub fn note_commit(&mut self, site: Ip) {
        if self.slots.is_empty() {
            return;
        }
        if let Some(slot) = self.slot_mut(site, false) {
            ewma_down(&mut slot.ewma_conflict);
            ewma_down(&mut slot.ewma_capacity);
            ewma_down(&mut slot.ewma_sync);
            ewma_down(&mut slot.ewma_validation);
            ewma_down(&mut slot.ewma_fallback);
        }
    }

    /// Fallback-entry hook: pick the backend for this completion, applying
    /// hysteresis. Returns the flavor to run and whether this call switched
    /// the site.
    pub fn choose(&mut self, site: Ip) -> (FallbackKind, bool) {
        let policy = self.policy;
        if self.slots.is_empty() {
            return (FallbackKind::Lock, false);
        }
        let Some(slot) = self.slot_mut(site, true) else {
            self.overflow += 1;
            return (FallbackKind::Lock, false);
        };
        let mut switched = false;
        if slot.execs >= policy.min_execs
            && slot.cooldown == 0
            && slot.pressure() >= policy.min_pressure
        {
            let (conflict, capacity, sync, validation) = slot.shares();
            if let Some(want) = policy.classify(conflict, capacity, sync, validation) {
                if want != slot.backend {
                    slot.backend = want;
                    slot.switches += 1;
                    slot.d_switches += 1;
                    slot.cooldown = policy.cooldown;
                    switched = true;
                }
            }
        }
        (slot.backend, switched)
    }

    /// Fallback-completion hook: count the flavor that ran and raise the
    /// fallback-rate EWMA.
    pub fn note_fallback(&mut self, site: Ip, flavor: FallbackKind) {
        if self.slots.is_empty() {
            return;
        }
        let Some(slot) = self.slot_mut(site, true) else {
            self.overflow += 1;
            return;
        };
        match flavor {
            FallbackKind::Lock => {
                slot.d_lock += 1;
                slot.t_lock += 1;
            }
            FallbackKind::Stm => {
                slot.d_stm += 1;
                slot.t_stm += 1;
            }
            FallbackKind::Hle => {
                slot.d_hle += 1;
                slot.t_hle += 1;
            }
            FallbackKind::Adaptive => {
                unreachable!("adaptive dispatch resolves to a concrete flavor")
            }
        }
        ewma_up(&mut slot.ewma_fallback);
    }

    /// Snapshot every seated site (lifetime totals).
    pub fn snapshot(&self) -> Vec<SiteSnapshot> {
        let mut out: Vec<SiteSnapshot> = self
            .slots
            .iter()
            .flatten()
            .map(|s| SiteSnapshot {
                site: s.site,
                backend: s.backend,
                switches: s.switches,
                fb_lock: s.t_lock,
                fb_stm: s.t_stm,
                fb_hle: s.t_hle,
            })
            .collect();
        out.sort_by_key(|s| (s.site.func.0, s.site.line));
        out
    }

    /// Drain the per-flavor / switch counts accumulated since the last
    /// call (EWMAs, choices and lifetime totals persist). Used by the
    /// harness to publish per-round deltas without double counting.
    pub fn take_delta(&mut self) -> Vec<SiteSnapshot> {
        let mut out = Vec::new();
        for slot in self.slots.iter_mut().flatten() {
            if slot.d_lock == 0 && slot.d_stm == 0 && slot.d_hle == 0 && slot.d_switches == 0 {
                continue;
            }
            out.push(SiteSnapshot {
                site: slot.site,
                backend: slot.backend,
                switches: slot.d_switches,
                fb_lock: slot.d_lock,
                fb_stm: slot.d_stm,
                fb_hle: slot.d_hle,
            });
            slot.d_lock = 0;
            slot.d_stm = 0;
            slot.d_hle = 0;
            slot.d_switches = 0;
        }
        out.sort_by_key(|s| (s.site.func.0, s.site.line));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsim_htm::FuncId;

    fn site(n: u32) -> Ip {
        Ip::new(FuncId(n), 1)
    }

    fn drive(table: &mut SiteTable, s: Ip, class: AbortClass, rounds: u64) {
        for _ in 0..rounds {
            table.plan(s);
            table.note_abort(s, class);
            let (flavor, _) = table.choose(s);
            table.note_fallback(s, flavor);
        }
    }

    #[test]
    fn detached_table_is_inert() {
        let mut t = SiteTable::detached();
        assert!(!t.is_adaptive());
        assert_eq!(t.capacity(), 0);
        t.note_abort(site(1), AbortClass::Conflict);
        t.note_commit(site(1));
        assert_eq!(t.choose(site(1)), (FallbackKind::Lock, false));
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn capacity_dominant_site_switches_to_stm_once() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(1), AbortClass::Capacity, 200);
        let snap = &t.snapshot()[0];
        assert_eq!(snap.backend, FallbackKind::Stm);
        assert_eq!(snap.switches, 1, "hysteresis: no flapping");
        assert!(snap.fb_stm > 0);
        assert_eq!(t.capacity(), SITE_CAPACITY, "no growth");
    }

    #[test]
    fn conflict_dominant_site_switches_to_hle_and_boosts_budget() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(2), AbortClass::Conflict, 200);
        let snap = &t.snapshot()[0];
        assert_eq!(snap.backend, FallbackKind::Hle);
        let plan = t.plan(site(2));
        assert_eq!(
            plan.max_retries,
            AdaptivePolicy::DEFAULT.boosted_retries,
            "conflict sites get the boosted retry budget"
        );
        assert!(plan.attempt_htm, "HLE sites keep speculating");
    }

    #[test]
    fn sync_dominant_site_stays_on_lock_and_skips_doomed_attempts() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(3), AbortClass::Sync, 200);
        let snap = &t.snapshot()[0];
        assert_eq!(snap.backend, FallbackKind::Lock);
        assert_eq!(snap.switches, 0, "lock is already the right choice");
        let plan = t.plan(site(3));
        assert_eq!(plan.max_retries, 0);
        assert!(
            !plan.attempt_htm,
            "always-falling-back serial site skips the doomed attempt"
        );
    }

    #[test]
    fn skipping_sites_still_probe_periodically() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(4), AbortClass::Sync, 100);
        let probes = (0..200).filter(|_| t.plan(site(4)).attempt_htm).count();
        assert!(probes > 0, "probe attempts keep the site re-learnable");
        assert!(probes < 20, "but they are rare");
    }

    #[test]
    fn commits_decay_pressure_and_recover_speculation() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(5), AbortClass::Sync, 100);
        assert!(!t.plan(site(5)).attempt_htm);
        // Phase change: the site now commits cleanly; pressure decays and
        // speculation resumes.
        for _ in 0..100 {
            t.note_commit(site(5));
        }
        assert!(t.plan(site(5)).attempt_htm);
    }

    #[test]
    fn validation_failures_push_stm_site_to_lock() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(6), AbortClass::Capacity, 100);
        assert_eq!(t.snapshot()[0].backend, FallbackKind::Stm);
        // The STM keeps losing validation at this site.
        for _ in 0..200 {
            t.plan(site(6));
            t.note_abort(site(6), AbortClass::Validation);
            let (flavor, _) = t.choose(site(6));
            t.note_fallback(site(6), flavor);
        }
        assert_eq!(t.snapshot()[0].backend, FallbackKind::Lock);
    }

    #[test]
    fn take_delta_drains_counts_but_keeps_choice() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        drive(&mut t, site(7), AbortClass::Capacity, 50);
        let d1 = t.take_delta();
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].fb_lock + d1[0].fb_stm + d1[0].fb_hle, 50);
        assert!(t.take_delta().is_empty(), "drained");
        let snap = &t.snapshot()[0];
        assert_eq!(
            snap.fb_lock + snap.fb_stm + snap.fb_hle,
            50,
            "totals persist"
        );
        drive(&mut t, site(7), AbortClass::Capacity, 10);
        let d2 = t.take_delta();
        assert_eq!(d2[0].fb_lock + d2[0].fb_stm + d2[0].fb_hle, 10);
    }

    #[test]
    fn classify_matches_documented_mapping() {
        let p = AdaptivePolicy::DEFAULT;
        assert_eq!(p.classify(1.0, 0.0, 0.0, 0.0), Some(FallbackKind::Hle));
        assert_eq!(p.classify(0.0, 1.0, 0.0, 0.0), Some(FallbackKind::Stm));
        assert_eq!(p.classify(0.0, 0.0, 1.0, 0.0), Some(FallbackKind::Lock));
        assert_eq!(p.classify(0.0, 1.0, 0.0, 0.9), Some(FallbackKind::Lock));
        assert_eq!(p.classify(0.3, 0.3, 0.3, 0.0), None, "no dominant class");
    }

    #[test]
    fn table_overflow_degrades_gracefully() {
        let mut t = SiteTable::new(AdaptivePolicy::DEFAULT, 5);
        for n in 0..(SITE_CAPACITY as u32 + 10) {
            t.note_abort(site(n), AbortClass::Conflict);
        }
        assert!(t.overflowed() > 0);
        assert_eq!(t.capacity(), SITE_CAPACITY);
        // Unseated sites still execute with the default plan.
        let plan = t.plan(site(SITE_CAPACITY as u32 + 5));
        assert_eq!(plan.max_retries, 5);
        assert!(plan.attempt_htm);
    }
}
