//! Allocation-free log-bucketed histograms for hot-path distribution data.
//!
//! Every other signal the runtime exports is a counter or an EWMA, which
//! hide tails: a site whose *mean* retry count is 1.2 can still have a p99
//! of 40 retries — the classic write-starvation failure mode. [`Hist32`]
//! captures the distribution at the cost the paper's "lightweight" ethos
//! allows: 32 power-of-two buckets plus an exact sum and count, plain
//! `u64` arrays, no allocation after construction, and purely additive
//! merge semantics so per-thread histograms ride the same delta pipeline
//! as every other metric (thread delta → profile absorb → epoch delta →
//! fleet merge).
//!
//! Bucket math: value `v` lands in bucket `floor(log2(v))` (clamped to
//! bucket 0 for `v <= 1` and bucket 31 for `v >= 2^31`), so bucket `i`
//! covers the closed range `[2^i, 2^(i+1) - 1]` and its inclusive upper
//! bound is `2^(i+1) - 1`. Percentiles derived from the buckets therefore
//! report that upper bound — "p99 <= 7 retries" — an estimate that is
//! exact for the bucket boundary and never understates the tail (except
//! in the final catch-all bucket, which is unbounded above).

use txsim_pmu::Ip;

use obs::Counter;

/// Number of power-of-two buckets in a [`Hist32`].
pub const HIST_BUCKETS: usize = 32;

/// Per-site histogram slots a [`HistTable`] holds (thread-private; sites
/// beyond the capacity are dropped rather than allocated for).
pub const HIST_SITE_CAPACITY: usize = 64;

/// A fixed-size log-bucketed histogram: 32 power-of-two buckets plus the
/// exact sum and count of recorded values. All fields are monotone `u64`s,
/// so two histograms merge by plain addition and a delta is a saturating
/// per-field subtraction — the same contract every other profile metric
/// follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hist32 {
    /// Bucket `i` counts values in `[2^i, 2^(i+1) - 1]` (bucket 0 also
    /// takes 0; bucket 31 takes everything from `2^31` up).
    pub buckets: [u64; HIST_BUCKETS],
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values (equals the bucket total).
    pub count: u64,
}

impl Hist32 {
    /// The bucket a value lands in: `floor(log2(v))`, clamped to `[0, 31]`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            ((63 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`). The final
    /// bucket is a catch-all; its nominal bound is `2^32 - 1`.
    #[inline]
    pub fn bucket_le(i: usize) -> u64 {
        (2u64 << i.min(HIST_BUCKETS - 1)) - 1
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Whether nothing was ever recorded (all fields zero).
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.sum == 0 && self.buckets.iter().all(|&b| b == 0)
    }

    /// Additive merge (the delta-pipeline contract).
    pub fn merge(&mut self, other: &Hist32) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Saturating per-field difference `self - other` (for epoch windows
    /// and diffs of cumulative histograms).
    pub fn minus(&self, other: &Hist32) -> Hist32 {
        let mut out = Hist32::default();
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i].saturating_sub(other.buckets[i]);
        }
        out.sum = self.sum.saturating_sub(other.sum);
        out.count = self.count.saturating_sub(other.count);
        out
    }

    /// Index of the bucket containing the `q`-quantile (`0.0 < q <= 1.0`):
    /// the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. `None` when the histogram is empty.
    pub fn percentile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return Some(i);
            }
        }
        Some(HIST_BUCKETS - 1)
    }

    /// The `q`-quantile as a value estimate: the inclusive upper bound of
    /// the bucket holding the quantile. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.percentile_bucket(q).map(Self::bucket_le)
    }

    /// Upper-bound estimate of the maximum recorded value (the bound of
    /// the highest non-empty bucket). `None` when empty.
    pub fn max_value(&self) -> Option<u64> {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(Self::bucket_le)
    }
}

/// The three per-site distributions the runtime records at transaction
/// completion: committed critical-section duration, retry depth, and
/// fallback dwell time. One struct so the delta pipeline moves them as a
/// unit keyed by site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteHists {
    /// Total critical-section duration in cycles, recorded once per
    /// completed section (HTM commit or fallback completion).
    pub tx_cycles: Hist32,
    /// Retry depth at completion: HTM attempts plus one if the fallback
    /// path ran. A healthy site sits at 1; a starved site's tail stretches.
    pub retry_depth: Hist32,
    /// Cycles spent inside the fallback path, recorded only for sections
    /// that fell back (`fb_dwell.count` is the fallback completion count).
    pub fb_dwell: Hist32,
}

impl SiteHists {
    /// Whether all three histograms are empty.
    pub fn is_zero(&self) -> bool {
        self.tx_cycles.is_zero() && self.retry_depth.is_zero() && self.fb_dwell.is_zero()
    }

    /// Additive merge of all three histograms.
    pub fn merge(&mut self, other: &SiteHists) {
        self.tx_cycles.merge(&other.tx_cycles);
        self.retry_depth.merge(&other.retry_depth);
        self.fb_dwell.merge(&other.fb_dwell);
    }

    /// Saturating difference of all three histograms.
    pub fn minus(&self, other: &SiteHists) -> SiteHists {
        SiteHists {
            tx_cycles: self.tx_cycles.minus(&other.tx_cycles),
            retry_depth: self.retry_depth.minus(&other.retry_depth),
            fb_dwell: self.fb_dwell.minus(&other.fb_dwell),
        }
    }

    /// Record one completed critical section.
    pub fn record_completion(&mut self, duration: u64, attempts: u32, fb_dwell: Option<u64>) {
        self.tx_cycles.record(duration);
        self.retry_depth.record(attempts as u64);
        if let Some(dwell) = fb_dwell {
            self.fb_dwell.record(dwell);
        }
    }
}

struct HistSlot {
    site: Ip,
    used: bool,
    hists: SiteHists,
}

/// Thread-private per-site histogram table: fixed capacity, open-addressed,
/// no allocation after construction, no shared-cacheline writes on the
/// record path. The detached variant has zero capacity, so every hook in
/// the runtime's hot loop costs exactly one branch when histogram
/// collection is off — the same zero-cost-when-unused contract the
/// adaptive [`crate::SiteTable`] established.
pub struct HistTable {
    slots: Vec<HistSlot>,
}

impl HistTable {
    /// A live table with [`HIST_SITE_CAPACITY`] slots.
    pub fn new() -> HistTable {
        HistTable {
            slots: (0..HIST_SITE_CAPACITY)
                .map(|_| HistSlot {
                    site: Ip::UNKNOWN,
                    used: false,
                    hists: SiteHists::default(),
                })
                .collect(),
        }
    }

    /// The zero-capacity table handed out when histogram collection is
    /// detached: `record` returns after one branch.
    pub fn detached() -> HistTable {
        HistTable { slots: Vec::new() }
    }

    /// Whether this table records anything at all.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    fn slot_for(&mut self, site: Ip) -> Option<usize> {
        let cap = self.slots.len();
        let mut idx = ((site.func.0 as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(site.line as u64) as usize)
            % cap;
        for _ in 0..cap {
            let slot = &mut self.slots[idx];
            if !slot.used {
                slot.used = true;
                slot.site = site;
                return Some(idx);
            }
            if slot.site == site {
                return Some(idx);
            }
            idx = (idx + 1) % cap;
        }
        // Table full: drop the record rather than allocate. A workload
        // with more than HIST_SITE_CAPACITY distinct transaction sites
        // loses distribution data for the overflow sites only.
        None
    }

    /// Record one completed critical section at `site`. No-op (one branch)
    /// when detached; silently drops when the site table is full.
    #[inline]
    pub fn record(&mut self, site: Ip, duration: u64, attempts: u32, fb_dwell: Option<u64>) {
        if self.slots.is_empty() {
            return;
        }
        if let Some(idx) = self.slot_for(site) {
            self.slots[idx]
                .hists
                .record_completion(duration, attempts, fb_dwell);
            obs::count(Counter::RtmHistStores);
        }
    }

    /// Drain the recorded histograms: returns every non-empty site's
    /// [`SiteHists`] and zeroes the table's contents (slot registrations
    /// are kept so re-recording needs no re-probing).
    pub fn take_delta(&mut self) -> Vec<(Ip, SiteHists)> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if slot.used && !slot.hists.is_zero() {
                out.push((slot.site, std::mem::take(&mut slot.hists)));
            }
        }
        out
    }
}

impl Default for HistTable {
    fn default() -> Self {
        HistTable::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsim_pmu::FuncId;

    #[test]
    fn bucket_index_is_floor_log2_clamped() {
        assert_eq!(Hist32::bucket_index(0), 0);
        assert_eq!(Hist32::bucket_index(1), 0);
        assert_eq!(Hist32::bucket_index(2), 1);
        assert_eq!(Hist32::bucket_index(3), 1);
        assert_eq!(Hist32::bucket_index(4), 2);
        assert_eq!(Hist32::bucket_index(7), 2);
        assert_eq!(Hist32::bucket_index(8), 3);
        assert_eq!(Hist32::bucket_index(1 << 30), 30);
        assert_eq!(Hist32::bucket_index((1 << 31) - 1), 30);
        assert_eq!(Hist32::bucket_index(1 << 31), 31);
        assert_eq!(Hist32::bucket_index(u64::MAX), 31);
    }

    #[test]
    fn bucket_bounds_cover_their_ranges() {
        for i in 0..HIST_BUCKETS - 1 {
            let le = Hist32::bucket_le(i);
            assert_eq!(Hist32::bucket_index(le), i, "upper bound of bucket {i}");
            assert_eq!(Hist32::bucket_index(le + 1), i + 1);
        }
        assert_eq!(Hist32::bucket_le(0), 1);
        assert_eq!(Hist32::bucket_le(1), 3);
        assert_eq!(Hist32::bucket_le(31), (1u64 << 32) - 1);
    }

    #[test]
    fn record_merge_minus_are_consistent() {
        let mut a = Hist32::default();
        for v in [1, 2, 3, 100, 5000] {
            a.record(v);
        }
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 5106);
        let mut b = Hist32::default();
        b.record(7);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 5113);
        // merged - b == a, field for field.
        assert_eq!(merged.minus(&b), a);
        assert!(Hist32::default().is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let mut h = Hist32::default();
        // 98 fast completions, 2 in the tail.
        for _ in 0..98 {
            h.record(1);
        }
        h.record(40);
        h.record(45);
        assert_eq!(h.percentile(0.50), Some(1));
        assert_eq!(h.percentile(0.90), Some(1));
        // p99 → 99th of 100 values → the 40 → bucket [32,63].
        assert_eq!(h.percentile(0.99), Some(63));
        assert_eq!(h.max_value(), Some(63));
        assert_eq!(h.percentile_bucket(0.99), Some(5));
        assert_eq!(Hist32::default().percentile(0.99), None);
        assert_eq!(Hist32::default().max_value(), None);
    }

    #[test]
    fn site_hists_record_completion_routes_fields() {
        let mut s = SiteHists::default();
        s.record_completion(1000, 1, None);
        s.record_completion(9000, 7, Some(4000));
        assert_eq!(s.tx_cycles.count, 2);
        assert_eq!(s.retry_depth.count, 2);
        assert_eq!(s.retry_depth.sum, 8);
        assert_eq!(s.fb_dwell.count, 1, "dwell only for fallback completions");
        assert_eq!(s.fb_dwell.sum, 4000);
    }

    #[test]
    fn detached_table_records_nothing() {
        let mut t = HistTable::detached();
        assert!(!t.is_enabled());
        t.record(Ip::new(FuncId(1), 2), 100, 1, None);
        assert!(t.take_delta().is_empty());
    }

    #[test]
    fn table_accumulates_per_site_and_drains() {
        let mut t = HistTable::new();
        assert!(t.is_enabled());
        let a = Ip::new(FuncId(1), 10);
        let b = Ip::new(FuncId(2), 20);
        t.record(a, 100, 1, None);
        t.record(a, 200, 3, Some(50));
        t.record(b, 300, 1, None);
        let mut delta = t.take_delta();
        delta.sort_by_key(|(site, _)| (site.func.0, site.line));
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0].0, a);
        assert_eq!(delta[0].1.tx_cycles.count, 2);
        assert_eq!(delta[0].1.fb_dwell.count, 1);
        assert_eq!(delta[1].0, b);
        assert_eq!(delta[1].1.tx_cycles.count, 1);
        // Drained: a second take is empty until new records arrive.
        assert!(t.take_delta().is_empty());
        t.record(a, 400, 2, None);
        assert_eq!(t.take_delta().len(), 1);
    }

    #[test]
    fn table_overflow_drops_instead_of_allocating() {
        let mut t = HistTable::new();
        for i in 0..(HIST_SITE_CAPACITY as u32 + 8) {
            t.record(Ip::new(FuncId(i), 1), 10, 1, None);
        }
        let delta = t.take_delta();
        assert_eq!(delta.len(), HIST_SITE_CAPACITY, "capacity bounds the table");
    }
}
