#!/usr/bin/env bash
# Offline CI gate: format, lint, test — all without touching the network.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== serve-mode smoke test (ephemeral port, /healthz + /metrics scrape)"
cargo test -q -p txbench --test serve_smoke

echo "== fleet-aggregation smoke test (two serve instances, one aggregator)"
cargo test -q -p txbench --test agg_smoke

echo "== STM fallback smoke run (repro --fallback stm on a contended workload)"
cargo run --release -q -p txbench --bin repro -- --fallback stm --trials 1 profile micro/true_sharing

echo "== ci.sh: all green"
