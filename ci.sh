#!/usr/bin/env bash
# Offline CI gate: format, lint, test — all without touching the network.
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== serve-mode smoke test (ephemeral port, /healthz + /metrics scrape)"
cargo test -q -p txbench --test serve_smoke

echo "== fleet-aggregation smoke test (two serve instances, one aggregator)"
cargo test -q -p txbench --test agg_smoke

echo "== STM fallback smoke run (repro --fallback stm on a contended workload)"
cargo run --release -q -p txbench --bin repro -- --fallback stm --trials 1 profile micro/true_sharing

echo "== adaptive-fallback regression gate (repro diff --check vs pinned baseline)"
# Profile the mixed-phase workload under the adaptive backend and diff it
# against the pinned results/baseline_mixed_adaptive.txsp (store v5, so
# the baseline carries per-site latency/retry histograms). The gate fails
# on a dominant component-share regression (>= 10 pp; the workload runs
# on real threads, so smaller share movement — lock-wait especially — is
# scheduling jitter), any decision-tree suggestion absent from the
# baseline, or a well-sampled site whose p99 transaction latency moved up
# by >= 2 log buckets (a 4x tail regression; single-bucket moves are
# boundary jitter). Rebless by copying the fresh profile over the
# baseline when an intentional change shifts the decomposition.
fresh_dir="$(mktemp -d)"
trap 'rm -rf "$fresh_dir"' EXIT
cargo run --release -q -p txbench --bin repro -- \
  --threads 4 --scale 40 --trials 5 --fallback adaptive \
  --out "$fresh_dir" profile micro/mixed_phase > /dev/null
cargo run --release -q -p txbench --bin repro -- diff \
  results/baseline_mixed_adaptive.txsp \
  "$fresh_dir/profile-micro_mixed_phase.txsp" --check > /dev/null

echo "== pinned STM-profile regression gates (repro diff --check vs baselines)"
# Three more pinned baselines, all profiled under the STM fallback
# (backoff contention manager, the default): the starvation workload, the
# irrevocable workload and the true-sharing hammer. Same gate semantics
# as the adaptive baseline above. Rebless after an intentional change
# with:
#   for w in starved_writer irrevocable true_sharing; do
#     cargo run --release -q -p txbench --bin repro -- \
#       --threads 4 --scale 40 --fallback stm --out results profile micro/$w
#     mv results/profile-micro_$w.txsp results/baseline_${w}_stm.txsp
#   done
#   git add -f results/baseline_*_stm.txsp   # /results is gitignored
for w in starved_writer irrevocable true_sharing; do
  cargo run --release -q -p txbench --bin repro -- \
    --threads 4 --scale 40 --fallback stm \
    --out "$fresh_dir" profile micro/$w > /dev/null
  cargo run --release -q -p txbench --bin repro -- diff \
    "results/baseline_${w}_stm.txsp" \
    "$fresh_dir/profile-micro_$w.txsp" --check > /dev/null
done

echo "== contention-manager smoke (starved_writer under every policy)"
for cm in backoff karma escalate; do
  cargo run --release -q -p txbench --bin repro -- \
    --fallback stm --cm "$cm" --trials 1 --scale 5 \
    profile micro/starved_writer > /dev/null
done

echo "== karma starvation-rescue gate (repro diff backoff vs karma)"
# The subsystem's headline: under the STM fallback, switching the
# contention manager from backoff to karma must resolve the decision
# tree's starvation diagnosis on micro/starved_writer (the same shape the
# htmbench acceptance test asserts with 2 log-buckets of p99 retry-depth
# margin).
cargo run --release -q -p txbench --bin repro -- \
  --threads 8 --scale 10 --fallback stm --cm backoff \
  --out "$fresh_dir" profile micro/starved_writer > /dev/null
mv "$fresh_dir/profile-micro_starved_writer.txsp" "$fresh_dir/cm_backoff.txsp"
cargo run --release -q -p txbench --bin repro -- \
  --threads 8 --scale 10 --fallback stm --cm karma \
  --out "$fresh_dir" profile micro/starved_writer > /dev/null
mv "$fresh_dir/profile-micro_starved_writer.txsp" "$fresh_dir/cm_karma.txsp"
cargo run --release -q -p txbench --bin repro -- diff \
  "$fresh_dir/cm_backoff.txsp" "$fresh_dir/cm_karma.txsp" \
  | grep -q "resolved: this site is starved" || {
  echo "karma failed to resolve the starvation diagnosis" >&2
  exit 1
}

echo "== ablation smoke run (txbench ablate, collector + directory sections)"
# Small sample budgets keep this a wiring check, not a benchmark (the
# host time-shares the sweep's threads anyway). Assert the TSV carries
# both sections and every collector variant.
ablate_out="$(cargo run --release -q -p txbench --bin ablate -- \
  --threads 1,2,4,8,16,32 --samples 20000 --scale 3)"
for needle in hashmap_locked arena_owned collector_e2e directory; do
  grep -q "$needle" <<< "$ablate_out" || {
    echo "ablate output missing '$needle'" >&2
    exit 1
  }
done

echo "== collector self-cost gate (repro --self-profile vs the Fig. 5 ~4% budget)"
# Bills the run's SamplesTaken at a per-sample cost calibrated inline and
# exits 1 when the collector's share of instrumented wall meets or
# exceeds the budget. The paper's Fig. 5 puts total profiling overhead
# near 4%; the collector fast path alone must stay inside it.
cargo run --release -q -p txbench --bin repro -- \
  --threads 4 --scale 3 --self-profile fig7 --self-profile-budget 4 \
  --out "$fresh_dir" > /dev/null

echo "== ci.sh: all green"
